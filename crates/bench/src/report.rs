//! Structured report rendering: markdown table helpers, CSV, and the
//! `BENCH_*.json` schema.
//!
//! The JSON and CSV writers are hand-rolled (the build environment is
//! offline — no serde) and fully deterministic: cells in grid order, runs
//! in seed order, values in recording order. That determinism is what the
//! `--threads 1` vs `--threads N` byte-identity test pins down.

use std::fmt::Display;
use std::fmt::Write as _;

use crate::sweep::{CellReport, RunRecord, SweepReport};

/// Prints a markdown-style table row.
pub fn row<D: Display>(cells: &[D]) {
    let mut line = String::from("|");
    for c in cells {
        line.push_str(&format!(" {c} |"));
    }
    println!("{line}");
}

/// Prints a markdown-style header with separator.
pub fn header(cells: &[&str]) {
    row(cells);
    let mut line = String::from("|");
    for _ in cells {
        line.push_str("---|");
    }
    println!("{line}");
}

/// JSON string escaping (control characters, quotes, backslashes).
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Stable JSON rendering of an observable: integral values without a
/// fractional part, everything else via Rust's shortest-roundtrip `f64`
/// display (deterministic across platforms).
pub(crate) fn json_number(v: f64) -> String {
    if !v.is_finite() {
        // JSON has no NaN/inf; encode as null (observables should never
        // produce these).
        return "null".into();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// The `scenario` JSON object of a cell (single line, no trailing newline).
fn scenario_obj(cell: &CellReport) -> String {
    let sc = &cell.scenario;
    let mut out = String::from("{");
    let _ = write!(
        out,
        "\"label\": \"{}\", \"n\": {}, \"f\": {}, \"seed_offset\": {}, \"seeds\": {}",
        json_escape(&sc.label),
        sc.n,
        sc.f,
        sc.seed_offset,
        cell.runs.len(),
    );
    for (key, value) in sc.describe() {
        let _ = write!(out, ", \"{key}\": \"{}\"", json_escape(&value));
    }
    out.push('}');
    out
}

/// One run's JSON object `{"seed": N, "values": {...}}` (single line).
/// Repeated observable names flatten into arrays, preserving order.
fn run_obj(run: &RunRecord) -> String {
    let mut out = String::new();
    let _ = write!(out, "{{\"seed\": {}, \"values\": {{", run.seed);
    let mut first = true;
    let mut emitted: Vec<&str> = Vec::new();
    for (name, _) in &run.values {
        let name = name.as_ref();
        if emitted.contains(&name) {
            continue;
        }
        emitted.push(name);
        let samples: Vec<String> = run
            .values
            .iter()
            .filter(|(k, _)| k.as_ref() == name)
            .map(|(_, v)| json_number(*v))
            .collect();
        if !first {
            out.push_str(", ");
        }
        first = false;
        if samples.len() == 1 {
            let _ = write!(out, "\"{name}\": {}", samples[0]);
        } else {
            let _ = write!(out, "\"{name}\": [{}]", samples.join(", "));
        }
    }
    out.push_str("}}");
    out
}

/// The cell-level quarantine record (single line, no leading separator).
fn error_obj(err: &crate::sweep::CellError) -> String {
    format!("{{\"attempts\": {}, \"detail\": \"{}\"}}", err.attempts, json_escape(&err.detail))
}

/// The schema tag of the JSONL **cell-stream** format: one self-describing
/// JSON line per finished cell. The same line is both the `soak` binary's
/// on-disk stream unit and the distributed engine's worker→coordinator
/// result message (see `crate::wire` and docs/DISTRIBUTED.md).
pub const CELL_STREAM_SCHEMA: &str = "ba-bench/cell-stream/v1";

/// Renders one executed cell as a single JSON line (no trailing newline) —
/// the cell-stream wire unit shared by the `soak` binary and the
/// distributed sweep engine. The line carries the schema version, a message
/// type, a stream-scoped cell id, the sweep title, and the soak pass
/// number, so the stream is self-describing even when truncated by a kill.
pub fn to_json_cell_line(sweep: &str, id: u64, pass: u64, cell: &CellReport) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"schema\": \"{CELL_STREAM_SCHEMA}\", \"type\": \"result\", \"id\": {id}, \
         \"sweep\": \"{}\", \"pass\": {pass}, \"scenario\": {}, \"runs\": [{}]",
        json_escape(sweep),
        scenario_obj(cell),
        cell.runs.iter().map(run_obj).collect::<Vec<_>>().join(", "),
    );
    if let Some(err) = &cell.error {
        let _ = write!(out, ", \"error\": {}", error_obj(err));
    }
    out.push('}');
    out
}

/// Renders executed sweeps as one `BENCH_*.json` document (schema
/// `ba-bench/sweep-report/v1`; see the README for the field reference).
pub fn to_json(experiment: &str, reports: &[SweepReport]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"ba-bench/sweep-report/v1\",");
    let _ = writeln!(out, "  \"experiment\": \"{}\",", json_escape(experiment));
    out.push_str("  \"sweeps\": [\n");
    for (si, sweep) in reports.iter().enumerate() {
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"title\": \"{}\",", json_escape(&sweep.title));
        let _ = writeln!(out, "      \"default_seeds\": {},", sweep.seeds);
        out.push_str("      \"cells\": [\n");
        for (ci, cell) in sweep.cells.iter().enumerate() {
            out.push_str("        {\n");
            out.push_str("          \"scenario\": ");
            out.push_str(&scenario_obj(cell));
            out.push_str(",\n");
            out.push_str("          \"runs\": [\n");
            for (ri, run) in cell.runs.iter().enumerate() {
                out.push_str("            ");
                out.push_str(&run_obj(run));
                out.push_str(if ri + 1 < cell.runs.len() { ",\n" } else { "\n" });
            }
            // Quarantined cells carry their structured error record instead
            // of being silently rendered as an empty run list. Clean cells
            // render byte-identically to the pre-distributed format.
            match &cell.error {
                Some(err) => {
                    out.push_str("          ],\n");
                    let _ = writeln!(out, "          \"error\": {}", error_obj(err));
                }
                None => out.push_str("          ]\n"),
            }
            out.push_str(if ci + 1 < sweep.cells.len() { "        },\n" } else { "        }\n" });
        }
        out.push_str("      ]\n");
        out.push_str(if si + 1 < reports.len() { "    },\n" } else { "    }\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders executed sweeps as tall CSV:
/// `sweep,scenario,seed,metric,value` (one line per recorded observable).
///
/// Repeated observable names render **grouped** in first-occurrence order
/// — the same canonical order the JSON writer and the distributed wire
/// use — so renderings are identical whether a record was produced
/// in-process or decoded off the wire (decoding cannot recover an
/// interleaved recording order, and no renderer depends on one).
pub fn to_csv(reports: &[SweepReport]) -> String {
    fn csv_field(s: &str) -> String {
        if s.contains([',', '"', '\n']) {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_string()
        }
    }
    let mut out = String::from("sweep,scenario,seed,metric,value\n");
    for sweep in reports {
        for cell in &sweep.cells {
            for run in &cell.runs {
                let mut emitted: Vec<&str> = Vec::new();
                for (name, _) in &run.values {
                    let name = name.as_ref();
                    if emitted.contains(&name) {
                        continue;
                    }
                    emitted.push(name);
                    for value in
                        run.values.iter().filter(|(k, _)| k.as_ref() == name).map(|(_, v)| v)
                    {
                        let _ = writeln!(
                            out,
                            "{},{},{},{},{}",
                            csv_field(&sweep.title),
                            csv_field(&cell.scenario.label),
                            run.seed,
                            name,
                            json_number(*value),
                        );
                    }
                }
            }
        }
    }
    out
}

/// Markdown rendering of every quarantined cell across `reports`: a count
/// line plus one `sweep/label` line per cell, or `None` when the run is
/// clean. The shared CLI prints this right after execution (ahead of the
/// binaries' own tables) and mirrors it to stderr, so a distributed run
/// never silently omits work it failed to complete.
pub fn quarantine_summary(reports: &[SweepReport]) -> Option<String> {
    let quarantined: Vec<(&str, &CellReport)> = reports
        .iter()
        .flat_map(|r| r.cells.iter().map(move |c| (r.title.as_str(), c)))
        .filter(|(_, c)| c.error.is_some())
        .collect();
    if quarantined.is_empty() {
        return None;
    }
    let mut out = format!("{} quarantined cell(s) — results are incomplete:\n", quarantined.len());
    for (sweep, cell) in quarantined {
        let err = cell.error.as_ref().expect("filtered on error presence");
        let _ = writeln!(
            out,
            "  {sweep}/{}: {} failed attempt(s) — {}",
            cell.scenario.label, err.attempts, err.detail
        );
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{ProtocolSpec, Scenario};
    use crate::sweep::CellError;

    #[test]
    fn json_escaping_and_numbers() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_number(3.0), "3");
        assert_eq!(json_number(0.5), "0.5");
        assert_eq!(json_number(-2.0), "-2");
        assert_eq!(json_number(f64::NAN), "null");
    }

    fn quarantined_report() -> SweepReport {
        let scenario = Scenario::new("cell", 5, ProtocolSpec::QuadraticHalf);
        let cell = CellReport {
            scenario,
            runs: Vec::new(),
            error: Some(CellError { attempts: 2, detail: "worker died (signal 9)".into() }),
        };
        SweepReport { title: "t".into(), seeds: 2, cells: vec![cell] }
    }

    #[test]
    fn quarantined_cells_surface_in_json_and_summary() {
        let report = quarantined_report();
        let json = to_json("exp", std::slice::from_ref(&report));
        assert!(
            json.contains("\"error\": {\"attempts\": 2, \"detail\": \"worker died (signal 9)\"}")
        );
        let line = to_json_cell_line("t", 0, 0, &report.cells[0]);
        assert!(line.contains("\"error\": {\"attempts\": 2"));
        let summary = quarantine_summary(std::slice::from_ref(&report)).expect("has errors");
        assert!(summary.starts_with("1 quarantined cell(s)"));
        assert!(summary.contains("t/cell: 2 failed attempt(s)"));
    }

    #[test]
    fn csv_groups_interleaved_repeats_canonically() {
        // Interleaved repeated names render grouped in first-occurrence
        // order — the same canonical order as JSON and the wire, so CSV is
        // identical for in-process and wire-decoded records.
        let mut record = RunRecord::new(0);
        record.push("a", 1.0);
        record.push("b", 2.0);
        record.push("a", 3.0);
        let report = SweepReport {
            title: "t".into(),
            seeds: 1,
            cells: vec![CellReport {
                scenario: Scenario::new("c", 5, ProtocolSpec::QuadraticHalf),
                runs: vec![record],
                error: None,
            }],
        };
        let csv = to_csv(&[report]);
        let body: Vec<&str> = csv.lines().skip(1).collect();
        assert_eq!(body, ["t,c,0,a,1", "t,c,0,a,3", "t,c,0,b,2"]);
    }

    #[test]
    fn clean_reports_have_no_summary_and_no_error_field() {
        let scenario = Scenario::new("cell", 5, ProtocolSpec::QuadraticHalf);
        let report = SweepReport {
            title: "t".into(),
            seeds: 1,
            cells: vec![CellReport { scenario, runs: vec![RunRecord::new(0)], error: None }],
        };
        assert!(quarantine_summary(std::slice::from_ref(&report)).is_none());
        assert!(!to_json("exp", &[report]).contains("\"error\""));
    }
}
