//! Structured report rendering: markdown table helpers, CSV, and the
//! `BENCH_*.json` schema.
//!
//! The JSON and CSV writers are hand-rolled (the build environment is
//! offline — no serde) and fully deterministic: cells in grid order, runs
//! in seed order, values in recording order. That determinism is what the
//! `--threads 1` vs `--threads N` byte-identity test pins down.

use std::fmt::Display;
use std::fmt::Write as _;

use crate::sweep::{CellReport, RunRecord, SweepReport};

/// Prints a markdown-style table row.
pub fn row<D: Display>(cells: &[D]) {
    let mut line = String::from("|");
    for c in cells {
        line.push_str(&format!(" {c} |"));
    }
    println!("{line}");
}

/// Prints a markdown-style header with separator.
pub fn header(cells: &[&str]) {
    row(cells);
    let mut line = String::from("|");
    for _ in cells {
        line.push_str("---|");
    }
    println!("{line}");
}

/// JSON string escaping (control characters, quotes, backslashes).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Stable JSON rendering of an observable: integral values without a
/// fractional part, everything else via Rust's shortest-roundtrip `f64`
/// display (deterministic across platforms).
fn json_number(v: f64) -> String {
    if !v.is_finite() {
        // JSON has no NaN/inf; encode as null (observables should never
        // produce these).
        return "null".into();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// The `scenario` JSON object of a cell (single line, no trailing newline).
fn scenario_obj(cell: &CellReport) -> String {
    let sc = &cell.scenario;
    let mut out = String::from("{");
    let _ = write!(
        out,
        "\"label\": \"{}\", \"n\": {}, \"f\": {}, \"seed_offset\": {}, \"seeds\": {}",
        json_escape(&sc.label),
        sc.n,
        sc.f,
        sc.seed_offset,
        cell.runs.len(),
    );
    for (key, value) in sc.describe() {
        let _ = write!(out, ", \"{key}\": \"{}\"", json_escape(&value));
    }
    out.push('}');
    out
}

/// One run's JSON object `{"seed": N, "values": {...}}` (single line).
/// Repeated observable names flatten into arrays, preserving order.
fn run_obj(run: &RunRecord) -> String {
    let mut out = String::new();
    let _ = write!(out, "{{\"seed\": {}, \"values\": {{", run.seed);
    let mut first = true;
    let mut emitted: Vec<&str> = Vec::new();
    for (name, _) in &run.values {
        if emitted.contains(name) {
            continue;
        }
        emitted.push(name);
        let samples: Vec<String> =
            run.values.iter().filter(|(k, _)| k == name).map(|(_, v)| json_number(*v)).collect();
        if !first {
            out.push_str(", ");
        }
        first = false;
        if samples.len() == 1 {
            let _ = write!(out, "\"{name}\": {}", samples[0]);
        } else {
            let _ = write!(out, "\"{name}\": [{}]", samples.join(", "));
        }
    }
    out.push_str("}}");
    out
}

/// Renders one executed cell as a single JSON line (no trailing newline) —
/// the record format the `soak` binary streams to its `.jsonl` file. The
/// line carries the sweep title and the soak pass number so the stream is
/// self-describing even when truncated by a kill.
pub fn to_json_cell_line(sweep: &str, pass: u64, cell: &CellReport) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"sweep\": \"{}\", \"pass\": {pass}, \"scenario\": {}, \"runs\": [{}]}}",
        json_escape(sweep),
        scenario_obj(cell),
        cell.runs.iter().map(run_obj).collect::<Vec<_>>().join(", "),
    );
    out
}

/// Renders executed sweeps as one `BENCH_*.json` document (schema
/// `ba-bench/sweep-report/v1`; see the README for the field reference).
pub fn to_json(experiment: &str, reports: &[SweepReport]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"ba-bench/sweep-report/v1\",");
    let _ = writeln!(out, "  \"experiment\": \"{}\",", json_escape(experiment));
    out.push_str("  \"sweeps\": [\n");
    for (si, sweep) in reports.iter().enumerate() {
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"title\": \"{}\",", json_escape(&sweep.title));
        let _ = writeln!(out, "      \"default_seeds\": {},", sweep.seeds);
        out.push_str("      \"cells\": [\n");
        for (ci, cell) in sweep.cells.iter().enumerate() {
            out.push_str("        {\n");
            out.push_str("          \"scenario\": ");
            out.push_str(&scenario_obj(cell));
            out.push_str(",\n");
            out.push_str("          \"runs\": [\n");
            for (ri, run) in cell.runs.iter().enumerate() {
                out.push_str("            ");
                out.push_str(&run_obj(run));
                out.push_str(if ri + 1 < cell.runs.len() { ",\n" } else { "\n" });
            }
            out.push_str("          ]\n");
            out.push_str(if ci + 1 < sweep.cells.len() { "        },\n" } else { "        }\n" });
        }
        out.push_str("      ]\n");
        out.push_str(if si + 1 < reports.len() { "    },\n" } else { "    }\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders executed sweeps as tall CSV:
/// `sweep,scenario,seed,metric,value` (one line per recorded observable).
pub fn to_csv(reports: &[SweepReport]) -> String {
    fn csv_field(s: &str) -> String {
        if s.contains([',', '"', '\n']) {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_string()
        }
    }
    let mut out = String::from("sweep,scenario,seed,metric,value\n");
    for sweep in reports {
        for cell in &sweep.cells {
            for run in &cell.runs {
                for (name, value) in &run.values {
                    let _ = writeln!(
                        out,
                        "{},{},{},{},{}",
                        csv_field(&sweep.title),
                        csv_field(&cell.scenario.label),
                        run.seed,
                        name,
                        json_number(*value),
                    );
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping_and_numbers() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_number(3.0), "3");
        assert_eq!(json_number(0.5), "0.5");
        assert_eq!(json_number(-2.0), "-2");
        assert_eq!(json_number(f64::NAN), "null");
    }
}
