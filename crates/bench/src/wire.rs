//! The distributed sweep **wire protocol** (schema
//! [`CELL_STREAM_SCHEMA`] = `ba-bench/cell-stream/v1`).
//!
//! One JSON line per message, flushed per line, over a worker subprocess's
//! stdin/stdout pipes (see `crate::dist` for the coordinator and
//! docs/DISTRIBUTED.md for the field reference):
//!
//! * **coordinator → worker**: a *cell descriptor* — a fully self-contained
//!   serialization of one [`Scenario`] plus the sweep title and seed count,
//!   enough to execute the cell with no shared state. Every axis of the
//!   scenario round-trips losslessly (`u64` payloads travel as decimal
//!   strings so values above 2⁵³ survive the JSON `f64` number space;
//!   `f64` payloads use Rust's shortest-roundtrip rendering, which parses
//!   back to the identical bit pattern).
//! * **worker → coordinator**: the finished cell as the same JSONL
//!   cell-stream line the `soak` binary writes to disk
//!   ([`crate::report::to_json_cell_line`]), or a structured `"error"`
//!   refusal when a descriptor decodes but cannot be executed.
//!
//! Decoding is strict: a missing or mismatched schema tag, an unknown
//! message type, a malformed field, or trailing garbage is a structured
//! [`WireError`], never a panic — the coordinator treats a malformed reply
//! as a worker failure and requeues the in-flight cell. The offline JSON
//! parser is shared with `crate::baseline` (depth-limited, rejects
//! trailing garbage).
//!
//! The worker loop ([`worker_loop`]) also carries the fault-injection test
//! hooks ([`FailPlan`]): after completing `k` cells the worker consumes its
//! next descriptor and dies *without replying* — by clean exit, `abort`, or
//! (on Unix) `SIGKILL` — which is exactly the mid-cell crash the
//! crash-recovery tests and the CI kill-a-worker step exercise.

use std::io::{BufRead, Write};

use crate::baseline::{parse_json, Json};
use crate::report::{json_escape, json_number, to_json_cell_line, CELL_STREAM_SCHEMA};
use crate::scenario::{AdversarySpec, EligMode, EligSeed, InputPattern, ProtocolSpec, Scenario};
use crate::sweep::{RunRecord, Sweep};
use ba_core::cert::CertEncoding;
use ba_sim::{CorruptionModel, PopulationMode, TransportSpec};

/// One unit of distributed work: a single sweep cell, self-contained.
#[derive(Clone, Debug, PartialEq)]
pub struct CellDescriptor {
    /// Stream-scoped id echoed back by the worker's reply.
    pub id: u64,
    /// The sweep title the cell belongs to.
    pub sweep: String,
    /// The sweep-level default seed count (the scenario's own `seeds`
    /// override, when set, wins — same resolution as the in-process path).
    pub seeds: u64,
    /// The cell's scenario, verbatim.
    pub scenario: Scenario,
}

/// A worker's decoded reply line.
#[derive(Clone, Debug, PartialEq)]
pub enum WorkerReply {
    /// The cell finished; per-seed records in seed order.
    Result {
        /// Echo of the descriptor id.
        id: u64,
        /// The decoded per-seed records.
        runs: Vec<RunRecord>,
    },
    /// The worker decoded the line but refuses to execute it (e.g. an
    /// unknown scenario axis from a newer coordinator).
    Refusal {
        /// Echo of the descriptor id.
        id: u64,
        /// The structured reason.
        error: String,
    },
}

/// A structured wire-protocol decoding failure.
#[derive(Clone, Debug, PartialEq)]
pub enum WireError {
    /// The line is not parseable JSON.
    Parse(String),
    /// The schema tag is missing or names an unsupported version.
    Schema {
        /// What the line carried (empty when absent).
        got: String,
    },
    /// The message type is not one this endpoint accepts.
    MsgType {
        /// What the line carried (empty when absent).
        got: String,
    },
    /// A required field is absent.
    Missing(&'static str),
    /// A field is present but malformed.
    Invalid {
        /// The offending field.
        field: &'static str,
        /// What was wrong with it.
        detail: String,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Parse(e) => write!(f, "unparseable wire line: {e}"),
            WireError::Schema { got } if got.is_empty() => write!(f, "missing schema tag"),
            WireError::Schema { got } => {
                write!(f, "unsupported schema {got:?} (this build speaks {CELL_STREAM_SCHEMA:?})")
            }
            WireError::MsgType { got } if got.is_empty() => write!(f, "missing message type"),
            WireError::MsgType { got } => write!(f, "unknown message type {got:?}"),
            WireError::Missing(field) => write!(f, "missing field {field:?}"),
            WireError::Invalid { field, detail } => write!(f, "invalid field {field:?}: {detail}"),
        }
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// A `u64` payload as a quoted decimal string (exact beyond 2⁵³).
fn ju64(v: u64) -> String {
    format!("\"{v}\"")
}

/// An optional `u64` payload (`null` when absent).
fn jopt_u64(v: Option<u64>) -> String {
    v.map_or_else(|| "null".into(), ju64)
}

fn inputs_obj(inputs: &InputPattern) -> String {
    match inputs {
        InputPattern::Unanimous(b) => format!("{{\"kind\": \"unanimous\", \"bit\": {b}}}"),
        InputPattern::Alternating => "{\"kind\": \"alternating\"}".into(),
        InputPattern::EveryThird => "{\"kind\": \"every_third\"}".into(),
        InputPattern::FirstFrac(frac) => {
            format!("{{\"kind\": \"first_frac\", \"frac\": {}}}", json_number(*frac))
        }
        InputPattern::SenderParity => "{\"kind\": \"sender_parity\"}".into(),
    }
}

fn adversary_obj(adv: &AdversarySpec) -> String {
    match adv {
        AdversarySpec::Passive => "{\"kind\": \"passive\"}".into(),
        AdversarySpec::CommitteeEraser => "{\"kind\": \"committee_eraser\"}".into(),
        AdversarySpec::StarveQuorum => "{\"kind\": \"starve_quorum\"}".into(),
        AdversarySpec::CrashTail { at_round } => {
            format!("{{\"kind\": \"crash_tail\", \"at_round\": {}}}", ju64(*at_round))
        }
        AdversarySpec::CertForger { target } => {
            format!("{{\"kind\": \"cert_forger\", \"target\": {target}}}")
        }
        AdversarySpec::VoteFlipper => "{\"kind\": \"vote_flipper\"}".into(),
        AdversarySpec::EquivocationSpammer => "{\"kind\": \"equivocation_spammer\"}".into(),
        AdversarySpec::SilenceThenBurst { at_round } => {
            format!("{{\"kind\": \"silence_burst\", \"at_round\": {}}}", ju64(*at_round))
        }
        AdversarySpec::AdaptiveEclipse { per_round } => {
            format!("{{\"kind\": \"adaptive_eclipse\", \"per_round\": {per_round}}}")
        }
        AdversarySpec::EclipseBurst { at_round } => {
            format!("{{\"kind\": \"eclipse_burst\", \"at_round\": {}}}", ju64(*at_round))
        }
    }
}

fn protocol_obj(protocol: &ProtocolSpec) -> String {
    match protocol {
        ProtocolSpec::SubqHalf { lambda, max_iters } => format!(
            "{{\"kind\": \"subq_half\", \"lambda\": {}, \"max_iters\": {}}}",
            json_number(*lambda),
            jopt_u64(*max_iters)
        ),
        ProtocolSpec::QuadraticHalf => "{\"kind\": \"quadratic_half\"}".into(),
        ProtocolSpec::WarmupThird { epochs } => {
            format!("{{\"kind\": \"warmup_third\", \"epochs\": {}}}", ju64(*epochs))
        }
        ProtocolSpec::SubqThird { lambda, epochs } => format!(
            "{{\"kind\": \"subq_third\", \"lambda\": {}, \"epochs\": {}}}",
            json_number(*lambda),
            ju64(*epochs)
        ),
        ProtocolSpec::SubqShared { lambda, epochs } => format!(
            "{{\"kind\": \"subq_shared\", \"lambda\": {}, \"epochs\": {}}}",
            json_number(*lambda),
            ju64(*epochs)
        ),
        ProtocolSpec::ChenMicali { lambda, epochs, erasure } => format!(
            "{{\"kind\": \"chen_micali\", \"lambda\": {}, \"epochs\": {}, \"erasure\": {erasure}}}",
            json_number(*lambda),
            ju64(*epochs)
        ),
        ProtocolSpec::MomoseRenHalf { views } => {
            format!("{{\"kind\": \"momose_ren\", \"views\": {}}}", ju64(*views))
        }
        ProtocolSpec::CksAdaptive { phases } => {
            format!("{{\"kind\": \"cks\", \"phases\": {}}}", ju64(*phases))
        }
        ProtocolSpec::DolevStrong { ds_f } => {
            format!("{{\"kind\": \"dolev_strong\", \"ds_f\": {ds_f}}}")
        }
        ProtocolSpec::BaFromBb { ds_f } => {
            format!("{{\"kind\": \"ba_from_bb\", \"ds_f\": {ds_f}}}")
        }
        ProtocolSpec::IterBroadcast { lambda } => {
            format!("{{\"kind\": \"iter_broadcast\", \"lambda\": {}}}", json_number(*lambda))
        }
        ProtocolSpec::Theorem4 { fanout } => {
            format!("{{\"kind\": \"theorem4\", \"fanout\": {fanout}}}")
        }
        ProtocolSpec::Theorem3 { committee } => {
            format!("{{\"kind\": \"theorem3\", \"committee\": {committee}}}")
        }
        ProtocolSpec::GoodIteration { lambda, mine_seed } => format!(
            "{{\"kind\": \"good_iteration\", \"lambda\": {}, \"mine_seed\": {}}}",
            json_number(*lambda),
            ju64(*mine_seed)
        ),
        ProtocolSpec::CommitteeTails { lambda } => {
            format!("{{\"kind\": \"committee_tails\", \"lambda\": {}}}", json_number(*lambda))
        }
        ProtocolSpec::CommitteeSample { lambda } => {
            format!("{{\"kind\": \"committee_sample\", \"lambda\": {}}}", json_number(*lambda))
        }
    }
}

/// The lossless scenario-spec object (distinct from the human-oriented
/// `scenario` object of report JSON, which renders `describe()` strings).
fn scenario_spec(sc: &Scenario) -> String {
    let model = match sc.model {
        CorruptionModel::Static => "static",
        CorruptionModel::Adaptive => "adaptive",
        CorruptionModel::StronglyAdaptive => "strongly_adaptive",
    };
    let elig = match sc.elig {
        EligMode::Ideal => "ideal",
        EligMode::Real => "real",
    };
    let elig_seed = match sc.elig_seed {
        EligSeed::PerRun => "{\"kind\": \"per_run\"}".to_string(),
        EligSeed::Fixed(s) => format!("{{\"kind\": \"fixed\", \"seed\": {}}}", ju64(s)),
    };
    // Encoded whenever set — even an empty plan — so the descriptor is a
    // lossless scenario image (the human-oriented `describe()` rendering,
    // by contrast, omits empty plans).
    let faults = match &sc.fault_plan {
        Some(plan) => format!(", \"faults\": \"{plan}\""),
        None => String::new(),
    };
    // Encoded only when on — off is the only state pre-claimed-bound
    // coordinators could produce, so old and new descriptors for an
    // unmarked scenario stay byte-identical.
    let claimed = if sc.claimed_bound { ", \"claimed_bound\": true" } else { "" };
    format!(
        "{{\"label\": \"{}\", \"n\": {}, \"f\": {}, \"model\": \"{model}\", \
         \"inputs\": {}, \"adversary\": {}, \"protocol\": {}, \
         \"elig\": \"{elig}\", \"elig_seed\": {elig_seed}, \
         \"seed_offset\": {}, \"seeds\": {}, \"sim_threads\": {}, \
         \"population\": \"{}\", \"transport\": \"{}\", \
         \"cert_encoding\": \"{}\"{faults}{claimed}}}",
        json_escape(&sc.label),
        sc.n,
        sc.f,
        inputs_obj(&sc.inputs),
        adversary_obj(&sc.adversary),
        protocol_obj(&sc.protocol),
        ju64(sc.seed_offset),
        jopt_u64(sc.seeds),
        sc.sim_threads,
        sc.population,
        sc.transport,
        sc.cert_encoding,
    )
}

/// Renders a cell descriptor as one wire line (no trailing newline).
pub fn encode_descriptor(d: &CellDescriptor) -> String {
    format!(
        "{{\"schema\": \"{CELL_STREAM_SCHEMA}\", \"type\": \"cell\", \"id\": {}, \
         \"sweep\": \"{}\", \"seeds\": {}, \"scenario\": {}}}",
        d.id,
        json_escape(&d.sweep),
        ju64(d.seeds),
        scenario_spec(&d.scenario),
    )
}

/// Renders a worker refusal as one wire line (no trailing newline).
pub fn encode_refusal(id: u64, error: &str) -> String {
    format!(
        "{{\"schema\": \"{CELL_STREAM_SCHEMA}\", \"type\": \"error\", \"id\": {id}, \
         \"error\": \"{}\"}}",
        json_escape(error),
    )
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

fn field<'a>(v: &'a Json, name: &'static str) -> Result<&'a Json, WireError> {
    v.get(name).ok_or(WireError::Missing(name))
}

fn dec_str(v: &Json, name: &'static str) -> Result<String, WireError> {
    field(v, name)?
        .as_str()
        .map(str::to_string)
        .ok_or(WireError::Invalid { field: name, detail: "expected a string".into() })
}

fn dec_bool(v: &Json, name: &'static str) -> Result<bool, WireError> {
    match field(v, name)? {
        Json::Bool(b) => Ok(*b),
        other => Err(WireError::Invalid {
            field: name,
            detail: format!("expected a bool, got {other:?}"),
        }),
    }
}

fn dec_f64(v: &Json, name: &'static str) -> Result<f64, WireError> {
    field(v, name)?
        .as_num()
        .ok_or(WireError::Invalid { field: name, detail: "expected a number".into() })
}

/// Decodes a string-encoded `u64` payload.
fn dec_u64(v: &Json, name: &'static str) -> Result<u64, WireError> {
    let s = field(v, name)?
        .as_str()
        .ok_or(WireError::Invalid { field: name, detail: "expected a decimal string".into() })?;
    s.parse::<u64>()
        .map_err(|e| WireError::Invalid { field: name, detail: format!("not a u64: {e}") })
}

fn dec_opt_u64(v: &Json, name: &'static str) -> Result<Option<u64>, WireError> {
    match field(v, name)? {
        Json::Null => Ok(None),
        Json::Str(s) => s
            .parse::<u64>()
            .map(Some)
            .map_err(|e| WireError::Invalid { field: name, detail: format!("not a u64: {e}") }),
        other => Err(WireError::Invalid {
            field: name,
            detail: format!("expected a decimal string or null, got {other:?}"),
        }),
    }
}

/// Decodes a plain-number integer (ids and `usize` axes; validated to be a
/// non-negative integral value inside the exact `f64` range).
fn num_to_int(v: f64, name: &'static str) -> Result<u64, WireError> {
    if !(v.is_finite() && v >= 0.0 && v == v.trunc() && v <= 9_007_199_254_740_992.0) {
        return Err(WireError::Invalid {
            field: name,
            detail: format!("not an exact non-negative integer: {v}"),
        });
    }
    Ok(v as u64)
}

fn dec_usize(v: &Json, name: &'static str) -> Result<usize, WireError> {
    Ok(num_to_int(dec_f64(v, name)?, name)? as usize)
}

fn dec_inputs(v: &Json) -> Result<InputPattern, WireError> {
    let obj = field(v, "inputs")?;
    match dec_str(obj, "kind")?.as_str() {
        "unanimous" => Ok(InputPattern::Unanimous(dec_bool(obj, "bit")?)),
        "alternating" => Ok(InputPattern::Alternating),
        "every_third" => Ok(InputPattern::EveryThird),
        "first_frac" => Ok(InputPattern::FirstFrac(dec_f64(obj, "frac")?)),
        "sender_parity" => Ok(InputPattern::SenderParity),
        other => {
            Err(WireError::Invalid { field: "inputs", detail: format!("unknown kind {other:?}") })
        }
    }
}

fn dec_adversary(v: &Json) -> Result<AdversarySpec, WireError> {
    let obj = field(v, "adversary")?;
    match dec_str(obj, "kind")?.as_str() {
        "passive" => Ok(AdversarySpec::Passive),
        "committee_eraser" => Ok(AdversarySpec::CommitteeEraser),
        "starve_quorum" => Ok(AdversarySpec::StarveQuorum),
        "crash_tail" => Ok(AdversarySpec::CrashTail { at_round: dec_u64(obj, "at_round")? }),
        "cert_forger" => Ok(AdversarySpec::CertForger { target: dec_bool(obj, "target")? }),
        "vote_flipper" => Ok(AdversarySpec::VoteFlipper),
        "equivocation_spammer" => Ok(AdversarySpec::EquivocationSpammer),
        "silence_burst" => {
            Ok(AdversarySpec::SilenceThenBurst { at_round: dec_u64(obj, "at_round")? })
        }
        "adaptive_eclipse" => {
            Ok(AdversarySpec::AdaptiveEclipse { per_round: dec_usize(obj, "per_round")? })
        }
        "eclipse_burst" => Ok(AdversarySpec::EclipseBurst { at_round: dec_u64(obj, "at_round")? }),
        other => Err(WireError::Invalid {
            field: "adversary",
            detail: format!("unknown kind {other:?}"),
        }),
    }
}

fn dec_protocol(v: &Json) -> Result<ProtocolSpec, WireError> {
    let obj = field(v, "protocol")?;
    match dec_str(obj, "kind")?.as_str() {
        "subq_half" => Ok(ProtocolSpec::SubqHalf {
            lambda: dec_f64(obj, "lambda")?,
            max_iters: dec_opt_u64(obj, "max_iters")?,
        }),
        "quadratic_half" => Ok(ProtocolSpec::QuadraticHalf),
        "warmup_third" => Ok(ProtocolSpec::WarmupThird { epochs: dec_u64(obj, "epochs")? }),
        "subq_third" => Ok(ProtocolSpec::SubqThird {
            lambda: dec_f64(obj, "lambda")?,
            epochs: dec_u64(obj, "epochs")?,
        }),
        "subq_shared" => Ok(ProtocolSpec::SubqShared {
            lambda: dec_f64(obj, "lambda")?,
            epochs: dec_u64(obj, "epochs")?,
        }),
        "chen_micali" => Ok(ProtocolSpec::ChenMicali {
            lambda: dec_f64(obj, "lambda")?,
            epochs: dec_u64(obj, "epochs")?,
            erasure: dec_bool(obj, "erasure")?,
        }),
        "momose_ren" => Ok(ProtocolSpec::MomoseRenHalf { views: dec_u64(obj, "views")? }),
        "cks" => Ok(ProtocolSpec::CksAdaptive { phases: dec_u64(obj, "phases")? }),
        "dolev_strong" => Ok(ProtocolSpec::DolevStrong { ds_f: dec_usize(obj, "ds_f")? }),
        "ba_from_bb" => Ok(ProtocolSpec::BaFromBb { ds_f: dec_usize(obj, "ds_f")? }),
        "iter_broadcast" => Ok(ProtocolSpec::IterBroadcast { lambda: dec_f64(obj, "lambda")? }),
        "theorem4" => Ok(ProtocolSpec::Theorem4 { fanout: dec_usize(obj, "fanout")? }),
        "theorem3" => Ok(ProtocolSpec::Theorem3 { committee: dec_usize(obj, "committee")? }),
        "good_iteration" => Ok(ProtocolSpec::GoodIteration {
            lambda: dec_f64(obj, "lambda")?,
            mine_seed: dec_u64(obj, "mine_seed")?,
        }),
        "committee_tails" => Ok(ProtocolSpec::CommitteeTails { lambda: dec_f64(obj, "lambda")? }),
        "committee_sample" => Ok(ProtocolSpec::CommitteeSample { lambda: dec_f64(obj, "lambda")? }),
        other => {
            Err(WireError::Invalid { field: "protocol", detail: format!("unknown kind {other:?}") })
        }
    }
}

fn dec_scenario(v: &Json) -> Result<Scenario, WireError> {
    let obj = field(v, "scenario")?;
    let model = match dec_str(obj, "model")?.as_str() {
        "static" => CorruptionModel::Static,
        "adaptive" => CorruptionModel::Adaptive,
        "strongly_adaptive" => CorruptionModel::StronglyAdaptive,
        other => {
            return Err(WireError::Invalid {
                field: "model",
                detail: format!("unknown model {other:?}"),
            })
        }
    };
    let elig = match dec_str(obj, "elig")?.as_str() {
        "ideal" => EligMode::Ideal,
        "real" => EligMode::Real,
        other => {
            return Err(WireError::Invalid {
                field: "elig",
                detail: format!("unknown mode {other:?}"),
            })
        }
    };
    let fault_plan = match obj.get("faults") {
        // Same legacy tolerance as the other optional axes: absent = no
        // fault layer, the only state pre-chaos coordinators could produce.
        None => None,
        Some(v) => {
            let s = v.as_str().ok_or(WireError::Invalid {
                field: "faults",
                detail: "expected a string".into(),
            })?;
            Some(s.parse().map_err(|e: String| WireError::Invalid { field: "faults", detail: e })?)
        }
    };
    let es_obj = field(obj, "elig_seed")?;
    let elig_seed = match dec_str(es_obj, "kind")?.as_str() {
        "per_run" => EligSeed::PerRun,
        "fixed" => EligSeed::Fixed(dec_u64(es_obj, "seed")?),
        other => {
            return Err(WireError::Invalid {
                field: "elig_seed",
                detail: format!("unknown kind {other:?}"),
            })
        }
    };
    Ok(Scenario {
        label: dec_str(obj, "label")?,
        n: dec_usize(obj, "n")?,
        f: dec_usize(obj, "f")?,
        model,
        inputs: dec_inputs(obj)?,
        adversary: dec_adversary(obj)?,
        protocol: dec_protocol(obj)?,
        elig,
        elig_seed,
        seed_offset: dec_u64(obj, "seed_offset")?,
        seeds: dec_opt_u64(obj, "seeds")?,
        sim_threads: dec_usize(obj, "sim_threads")?.max(1),
        // Encoded by every current coordinator; tolerated absent so workers
        // keep accepting descriptors from older builds (absent = dense, the
        // only mode those builds could produce).
        population: match obj.get("population") {
            None => PopulationMode::Dense,
            Some(v) => {
                let s = v.as_str().ok_or(WireError::Invalid {
                    field: "population",
                    detail: "expected a string".into(),
                })?;
                s.parse()
                    .map_err(|e: String| WireError::Invalid { field: "population", detail: e })?
            }
        },
        // Same legacy tolerance as `population`: absent = lockstep, the
        // only transport pre-transport coordinators could produce.
        transport: match obj.get("transport") {
            None => TransportSpec::Lockstep,
            Some(v) => {
                let s = v.as_str().ok_or(WireError::Invalid {
                    field: "transport",
                    detail: "expected a string".into(),
                })?;
                s.parse()
                    .map_err(|e: String| WireError::Invalid { field: "transport", detail: e })?
            }
        },
        // Same legacy tolerance again: absent = vector, the only encoding
        // pre-aggregation coordinators could produce.
        cert_encoding: match obj.get("cert_encoding") {
            None => CertEncoding::Vector,
            Some(v) => {
                let s = v.as_str().ok_or(WireError::Invalid {
                    field: "cert_encoding",
                    detail: "expected a string".into(),
                })?;
                s.parse()
                    .map_err(|e: String| WireError::Invalid { field: "cert_encoding", detail: e })?
            }
        },
        fault_plan,
        // Same legacy tolerance: absent = off, the only state
        // pre-claimed-bound coordinators could produce.
        claimed_bound: match obj.get("claimed_bound") {
            None => false,
            Some(_) => dec_bool(obj, "claimed_bound")?,
        },
    })
}

/// Parses a wire line and validates its schema tag.
fn parse_line(line: &str) -> Result<Json, WireError> {
    let v = parse_json(line).map_err(WireError::Parse)?;
    let got = v.get("schema").and_then(Json::as_str).unwrap_or_default();
    if got != CELL_STREAM_SCHEMA {
        return Err(WireError::Schema { got: got.to_string() });
    }
    Ok(v)
}

/// Decodes a coordinator → worker cell-descriptor line.
pub fn decode_descriptor(line: &str) -> Result<CellDescriptor, WireError> {
    let v = parse_line(line)?;
    let got = v.get("type").and_then(Json::as_str).unwrap_or_default();
    if got != "cell" {
        return Err(WireError::MsgType { got: got.to_string() });
    }
    Ok(CellDescriptor {
        id: num_to_int(dec_f64(&v, "id")?, "id")?,
        sweep: dec_str(&v, "sweep")?,
        seeds: dec_u64(&v, "seeds")?,
        scenario: dec_scenario(&v)?,
    })
}

/// Decodes the `values` object of one run into flat `(name, value)` pairs
/// (arrays flatten back into repeated names, `null` back into `NaN` — the
/// inverse of the report writer's rendering). Repeated names come back
/// **grouped** in first-occurrence order — the canonical order every
/// renderer emits — so an *interleaved* recording order does not survive
/// the wire; rendered outputs (JSON, CSV) are unaffected because all
/// renderers group the same way.
fn dec_run(v: &Json) -> Result<RunRecord, WireError> {
    let seed = num_to_int(dec_f64(v, "seed")?, "seed")?;
    let Some(Json::Obj(members)) = v.get("values") else {
        return Err(WireError::Invalid { field: "values", detail: "expected an object".into() });
    };
    let mut record = RunRecord::new(seed);
    for (name, value) in members {
        let mut push = |v: &Json| match v {
            Json::Num(x) => {
                record.values.push((name.clone().into(), *x));
                Ok(())
            }
            Json::Null => {
                record.values.push((name.clone().into(), f64::NAN));
                Ok(())
            }
            other => Err(WireError::Invalid {
                field: "values",
                detail: format!("observable {name:?} is not a number: {other:?}"),
            }),
        };
        match value {
            Json::Arr(items) => {
                for item in items {
                    push(item)?;
                }
            }
            single => push(single)?,
        }
    }
    Ok(record)
}

/// Decodes a worker → coordinator reply line (a cell-stream `result` or a
/// structured `error` refusal).
pub fn decode_reply(line: &str) -> Result<WorkerReply, WireError> {
    let v = parse_line(line)?;
    match v.get("type").and_then(Json::as_str).unwrap_or_default() {
        "result" => {
            let id = num_to_int(dec_f64(&v, "id")?, "id")?;
            let Some(runs) = v.get("runs").and_then(Json::as_arr) else {
                return Err(WireError::Missing("runs"));
            };
            let runs = runs.iter().map(dec_run).collect::<Result<Vec<_>, _>>()?;
            Ok(WorkerReply::Result { id, runs })
        }
        "error" => Ok(WorkerReply::Refusal {
            id: num_to_int(dec_f64(&v, "id")?, "id")?,
            error: dec_str(&v, "error")?,
        }),
        other => Err(WireError::MsgType { got: other.to_string() }),
    }
}

// ---------------------------------------------------------------------------
// The worker loop
// ---------------------------------------------------------------------------

/// How an injected worker failure manifests (test/CI hook).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailMode {
    /// Clean `exit(3)` without replying.
    Exit,
    /// `std::process::abort()` (SIGABRT on Unix).
    Abort,
    /// `SIGKILL` to self (Unix; falls back to abort elsewhere) — the
    /// harshest mid-cell death: no destructors, no flush.
    Kill,
}

impl FailMode {
    /// Parses a `--fail-mode` / `--worker-fail-mode` value.
    pub fn parse(s: &str) -> Option<FailMode> {
        match s {
            "exit" => Some(FailMode::Exit),
            "abort" => Some(FailMode::Abort),
            "kill" => Some(FailMode::Kill),
            _ => None,
        }
    }
}

/// The fault-injection plan of a worker: complete `after` cells, then die
/// mid-cell (descriptor consumed, no reply emitted) in the given mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FailPlan {
    /// Cells to complete before dying.
    pub after: u64,
    /// How to die.
    pub mode: FailMode,
}

impl FailPlan {
    /// Folds a `--fail-after N` flag into an accumulating plan (the two
    /// fail flags may arrive in either order; defaults: die immediately,
    /// by clean exit).
    pub fn with_after(prev: Option<FailPlan>, after: u64) -> FailPlan {
        FailPlan { after, mode: prev.map_or(FailMode::Exit, |plan| plan.mode) }
    }

    /// Folds a `--fail-mode M` flag into an accumulating plan.
    pub fn with_mode(prev: Option<FailPlan>, mode: FailMode) -> FailPlan {
        FailPlan { after: prev.map_or(0, |plan| plan.after), mode }
    }
}

fn die_as_planned(mode: FailMode) -> ! {
    match mode {
        FailMode::Exit => std::process::exit(3),
        FailMode::Abort => std::process::abort(),
        FailMode::Kill => kill_self(),
    }
}

#[cfg(unix)]
fn kill_self() -> ! {
    // No libc in the workspace: raise SIGKILL through the coreutils `kill`.
    let _ =
        std::process::Command::new("kill").arg("-9").arg(std::process::id().to_string()).status();
    std::process::abort() // unreachable when the signal lands
}

#[cfg(not(unix))]
fn kill_self() -> ! {
    std::process::abort()
}

/// Best-effort id extraction from a line that failed descriptor decoding,
/// so the worker can refuse the cell instead of dying on it.
fn salvage_id(line: &str) -> Option<u64> {
    let v = parse_json(line).ok()?;
    num_to_int(v.get("id")?.as_num()?, "id").ok()
}

/// The worker side of the protocol: reads cell descriptors line by line,
/// executes each cell exactly as the in-process engine would (one worker
/// thread; the run seed is `seed_offset + index`, so results are identical
/// to any other execution of the same cell), and emits one flushed
/// cell-stream line per finished cell. Returns the process exit code:
/// `0` on clean EOF, `4` on an unrecoverable stream error.
pub fn worker_loop(input: impl BufRead, mut output: impl Write, fail: Option<FailPlan>) -> i32 {
    let mut completed = 0u64;
    for line in input.lines() {
        let Ok(line) = line else { return 4 };
        if line.trim().is_empty() {
            continue;
        }
        let desc = match decode_descriptor(&line) {
            Ok(d) => d,
            Err(e) => match salvage_id(&line) {
                // The line carried an id: refuse the cell in-band and keep
                // serving (the coordinator quarantines it).
                Some(id) => {
                    if writeln!(output, "{}", encode_refusal(id, &e.to_string())).is_err()
                        || output.flush().is_err()
                    {
                        return 4;
                    }
                    continue;
                }
                // Garbage with no id: the stream itself is unusable.
                None => {
                    eprintln!("[worker] unusable wire line: {e}");
                    return 4;
                }
            },
        };
        if let Some(plan) = fail {
            if completed >= plan.after {
                // Mid-cell: the descriptor is consumed but no reply will
                // ever be emitted — the crash the coordinator recovers from.
                die_as_planned(plan.mode);
            }
        }
        let sweep = Sweep::new(desc.sweep.clone(), desc.seeds, vec![desc.scenario]);
        let report = sweep.run(1);
        let reply = to_json_cell_line(&desc.sweep, desc.id, 0, &report.cells[0]);
        if writeln!(output, "{reply}").is_err() || output.flush().is_err() {
            return 4;
        }
        completed += 1;
    }
    0
}

/// [`worker_loop`] over the process's stdin/stdout (the `ba-bench worker`
/// subcommand and the experiment binaries' `--worker` mode).
pub fn worker_main(fail: Option<FailPlan>) -> i32 {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    worker_loop(stdin.lock(), stdout.lock(), fail)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_scenario() -> Scenario {
        Scenario::new("cell \"x\"", 48, ProtocolSpec::SubqHalf { lambda: 12.5, max_iters: Some(6) })
            .f(19)
            .model(CorruptionModel::Adaptive)
            .inputs(InputPattern::FirstFrac(0.375))
            .adversary(AdversarySpec::EclipseBurst { at_round: 3 })
            .elig_fixed(u64::MAX)
            .seed_offset(u64::MAX - 7)
            .seeds(5)
            .sim_threads(2)
            .population(PopulationMode::Sparse)
            .transport(TransportSpec::Latency {
                round_ms: 20,
                gst_ms: 35,
                dist: ba_sim::DelayDist::Uniform { lo_ms: 1, hi_ms: 9 },
            })
            .faults(
                "drop:p=0.25:from=1:until=9,dup:p=0.1,reorder:p=0.05:budget=3,\
                 partition:2..5=24,sched=adversarial"
                    .parse()
                    .expect("a canonical fault plan"),
            )
    }

    #[test]
    fn descriptor_roundtrip_is_lossless() {
        let desc = CellDescriptor {
            id: 42,
            sweep: "title, with\ncontrol".into(),
            seeds: u64::MAX,
            scenario: sample_scenario(),
        };
        let line = encode_descriptor(&desc);
        assert_eq!(decode_descriptor(&line).expect("decodes"), desc);
    }

    #[test]
    fn result_line_roundtrips_through_reply_decoding() {
        let sweep = Sweep::new(
            "w",
            2,
            vec![Scenario::new("q", 5, ProtocolSpec::QuadraticHalf)
                .inputs(InputPattern::Unanimous(true))],
        );
        let report = sweep.run(1);
        let line = to_json_cell_line("w", 9, 0, &report.cells[0]);
        let WorkerReply::Result { id, runs } = decode_reply(&line).expect("decodes") else {
            panic!("expected a result reply");
        };
        assert_eq!(id, 9);
        assert_eq!(runs, report.cells[0].runs, "wire decoding changed the records");
    }

    #[test]
    fn population_field_is_optional_on_decode() {
        // Descriptors from pre-population coordinators lack the field
        // entirely; they decode as dense. A malformed value is refused.
        let desc = CellDescriptor {
            id: 5,
            sweep: "s".into(),
            seeds: 1,
            scenario: Scenario::new("c", 5, ProtocolSpec::QuadraticHalf),
        };
        let line = encode_descriptor(&desc);
        let legacy = line.replace(", \"population\": \"dense\"", "");
        assert_ne!(line, legacy, "expected the population field to be encoded");
        assert_eq!(decode_descriptor(&legacy).expect("legacy line decodes"), desc);
        let mangled = line.replace("\"population\": \"dense\"", "\"population\": \"ultra\"");
        assert!(matches!(
            decode_descriptor(&mangled),
            Err(WireError::Invalid { field: "population", .. })
        ));
    }

    #[test]
    fn cert_encoding_field_is_optional_on_decode() {
        // Descriptors from pre-aggregation coordinators lack the field
        // entirely; absent must decode as the vector encoding.
        let d = CellDescriptor {
            id: 3,
            sweep: "s".into(),
            seeds: 2,
            scenario: Scenario::new("q", 9, ProtocolSpec::QuadraticHalf)
                .cert_encoding(CertEncoding::Aggregate),
        };
        let line = encode_descriptor(&d);
        let back = decode_descriptor(&line).unwrap();
        assert_eq!(back.scenario.cert_encoding, CertEncoding::Aggregate);
        let legacy = line.replace(", \"cert_encoding\": \"aggregate\"", "");
        assert!(!legacy.contains("cert_encoding"));
        let back = decode_descriptor(&legacy).unwrap();
        assert_eq!(back.scenario.cert_encoding, CertEncoding::Vector);
    }

    #[test]
    fn transport_field_is_optional_on_decode() {
        // Descriptors from pre-transport coordinators lack the field
        // entirely; they decode as lockstep. A malformed value is refused.
        let desc = CellDescriptor {
            id: 6,
            sweep: "s".into(),
            seeds: 1,
            scenario: Scenario::new("c", 5, ProtocolSpec::QuadraticHalf),
        };
        let line = encode_descriptor(&desc);
        let legacy = line.replace(", \"transport\": \"lockstep\"", "");
        assert_ne!(line, legacy, "expected the transport field to be encoded");
        assert_eq!(decode_descriptor(&legacy).expect("legacy line decodes"), desc);
        let mangled =
            line.replace("\"transport\": \"lockstep\"", "\"transport\": \"carrier-pigeon\"");
        assert!(matches!(
            decode_descriptor(&mangled),
            Err(WireError::Invalid { field: "transport", .. })
        ));
    }

    #[test]
    fn faults_field_is_optional_on_decode() {
        use ba_sim::FaultPlan;
        // Descriptors from pre-chaos coordinators lack the field entirely;
        // they decode with no fault layer. A malformed plan is refused.
        let desc = CellDescriptor {
            id: 8,
            sweep: "s".into(),
            seeds: 1,
            scenario: Scenario::new("c", 5, ProtocolSpec::QuadraticHalf)
                .faults("drop:p=0.5".parse().expect("a drop plan")),
        };
        let line = encode_descriptor(&desc);
        let back = decode_descriptor(&line).expect("decodes");
        assert_eq!(back.scenario.fault_plan, desc.scenario.fault_plan);
        // An explicitly empty plan also survives the wire (it is not the
        // same scenario as one with no fault layer at all).
        let empty = CellDescriptor {
            scenario: Scenario::new("c", 5, ProtocolSpec::QuadraticHalf)
                .faults(FaultPlan::default()),
            ..desc.clone()
        };
        let back = decode_descriptor(&encode_descriptor(&empty)).expect("decodes");
        assert_eq!(back.scenario.fault_plan, Some(FaultPlan::default()));
        let legacy = line.replace(", \"faults\": \"drop:p=0.5\"", "");
        assert_ne!(line, legacy, "expected the faults field to be encoded");
        let back = decode_descriptor(&legacy).expect("legacy line decodes");
        assert_eq!(back.scenario.fault_plan, None);
        let mangled = line.replace("\"faults\": \"drop:p=0.5\"", "\"faults\": \"meteor:p=1\"");
        assert!(matches!(
            decode_descriptor(&mangled),
            Err(WireError::Invalid { field: "faults", .. })
        ));
    }

    #[test]
    fn competitor_protocol_kinds_roundtrip() {
        for protocol in
            [ProtocolSpec::MomoseRenHalf { views: 9 }, ProtocolSpec::CksAdaptive { phases: 7 }]
        {
            let desc = CellDescriptor {
                id: 11,
                sweep: "s".into(),
                seeds: 2,
                scenario: Scenario::new("c", 16, protocol)
                    .f(5)
                    .cert_encoding(CertEncoding::Aggregate),
            };
            let line = encode_descriptor(&desc);
            assert_eq!(decode_descriptor(&line).expect("decodes"), desc);
        }
    }

    #[test]
    fn claimed_bound_field_is_optional_on_decode() {
        // Off (the default) is not encoded at all — descriptors for
        // unmarked scenarios stay byte-identical to pre-claimed-bound
        // coordinators' output — and absent decodes as off.
        let plain = CellDescriptor {
            id: 12,
            sweep: "s".into(),
            seeds: 1,
            scenario: Scenario::new("c", 5, ProtocolSpec::QuadraticHalf),
        };
        let line = encode_descriptor(&plain);
        assert!(!line.contains("claimed_bound"));
        assert!(!decode_descriptor(&line).expect("decodes").scenario.claimed_bound);
        let marked = CellDescriptor {
            scenario: plain.scenario.clone().with_claimed_bound(),
            ..plain.clone()
        };
        let marked_line = encode_descriptor(&marked);
        assert_eq!(marked_line.replace(", \"claimed_bound\": true", ""), line);
        assert!(decode_descriptor(&marked_line).expect("decodes").scenario.claimed_bound);
    }

    #[test]
    fn schema_version_is_refused() {
        let desc = CellDescriptor {
            id: 1,
            sweep: "s".into(),
            seeds: 1,
            scenario: Scenario::new("c", 5, ProtocolSpec::QuadraticHalf),
        };
        let line = encode_descriptor(&desc).replace("cell-stream/v1", "cell-stream/v9");
        assert!(matches!(
            decode_descriptor(&line),
            Err(WireError::Schema { got }) if got.ends_with("v9")
        ));
        assert!(
            matches!(decode_reply("{\"x\": 1}"), Err(WireError::Schema { got }) if got.is_empty())
        );
    }

    #[test]
    fn truncated_and_garbage_lines_are_structured_errors() {
        assert!(matches!(decode_descriptor("{\"schema\": \"ba-ben"), Err(WireError::Parse(_))));
        assert!(matches!(decode_reply("not json at all"), Err(WireError::Parse(_))));
        let desc = CellDescriptor {
            id: 3,
            sweep: "s".into(),
            seeds: 1,
            scenario: Scenario::new("c", 5, ProtocolSpec::QuadraticHalf),
        };
        let full = encode_descriptor(&desc);
        let truncated = &full[..full.len() - 10];
        assert!(decode_descriptor(truncated).is_err());
        // Unknown message types are refused with the offending tag.
        let retyped = full.replace("\"type\": \"cell\"", "\"type\": \"hello\"");
        assert!(
            matches!(decode_descriptor(&retyped), Err(WireError::MsgType { got }) if got == "hello")
        );
    }

    #[test]
    fn worker_loop_serves_refuses_and_exits() {
        let desc = CellDescriptor {
            id: 0,
            sweep: "w".into(),
            seeds: 2,
            scenario: Scenario::new("q", 5, ProtocolSpec::QuadraticHalf)
                .inputs(InputPattern::Unanimous(true)),
        };
        // A served cell, a refusable line (id present, bad scenario), and a
        // blank line to skip.
        let bad = encode_descriptor(&CellDescriptor { id: 7, ..desc.clone() })
            .replace("quadratic_half", "martian_protocol");
        let input = format!("{}\n\n{}\n", encode_descriptor(&desc), bad);
        let mut out = Vec::new();
        let code = worker_loop(input.as_bytes(), &mut out, None);
        assert_eq!(code, 0, "clean EOF");
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(matches!(decode_reply(lines[0]), Ok(WorkerReply::Result { id: 0, .. })));
        let Ok(WorkerReply::Refusal { id, error }) = decode_reply(lines[1]) else {
            panic!("expected a refusal, got {:?}", lines[1]);
        };
        assert_eq!(id, 7);
        assert!(error.contains("martian_protocol"));
        // The served cell's records match an in-process run exactly.
        let Ok(WorkerReply::Result { runs, .. }) = decode_reply(lines[0]) else { unreachable!() };
        let local = Sweep::new("w", 2, vec![desc.scenario]).run(1);
        assert_eq!(runs, local.cells[0].runs);
    }

    #[test]
    fn worker_loop_dies_on_idless_garbage() {
        let mut out = Vec::new();
        assert_eq!(worker_loop("garbage\n".as_bytes(), &mut out, None), 4);
        assert!(out.is_empty());
    }
}
