//! The shared experiment CLI.
//!
//! Every `e1`–`e11` binary accepts the same flags:
//!
//! * `--seeds N` — override each sweep's seed count (smoke runs use 2);
//! * `--grid full|smoke` — the full paper grid or a reduced CI grid;
//! * `--threads N` — sweep worker count (default: all cores);
//! * `--sim-threads N` — worker threads *inside* each execution (default:
//!   scenario-specified, usually 1); outputs are byte-identical at every
//!   `--threads` × `--sim-threads` combination;
//! * `--population sparse|dense` — population engine applied to every
//!   scenario (default: scenario-specified, usually dense). Sparse runs
//!   materialize only active nodes; sparse-capable protocol families are
//!   byte-identical to dense and the rest silently fall back, so this is
//!   a resource knob like `--sim-threads`;
//! * `--transport lockstep|latency[:k=v,...]|tcp` — delivery transport
//!   applied to every scenario (default: scenario-specified, usually
//!   lockstep). Unlike `--sim-threads`/`--population` this is a
//!   *protocol-affecting* axis (see docs/NETWORKING.md);
//! * `--cert-encoding vector|aggregate` — quorum-certificate encoding
//!   applied to every scenario (default: scenario-specified, usually
//!   vector). Protocol-affecting like `--transport` in that it changes
//!   message sizes, but decision observables are provably identical
//!   across encodings (see docs/CERTIFICATES.md);
//! * `--faults PLAN` — network-fault plan layered over every scenario's
//!   transport (`none`, or comma-joined `drop:p=R[:from=A][:until=B]`,
//!   `dup:p=R`, `reorder:p=R[:budget=K]`, `partition:A..B=SPLIT`,
//!   `sched=adversarial`; see docs/FAULTS.md). Injection is
//!   seed-deterministic; safety observables are invariant under every
//!   plan, liveness observables may move;
//! * `--round-ms MS` / `--gst MS` / `--delay-dist DIST` — shorthand knobs
//!   for the latency transport's round duration, global stabilization
//!   time, and per-link delay distribution (`zero`, `uniform:LO..HI`,
//!   `exp:MEAN`); imply `--transport latency` when it is not given, and
//!   refuse to combine with an explicit non-latency `--transport`;
//! * `--workers N` — distribute the grid's cells across `N` worker
//!   *subprocesses* instead of in-process threads (crash-recovering; see
//!   docs/DISTRIBUTED.md). Outputs are byte-identical to the in-process
//!   path at every worker count;
//! * `--worker-cmd CMD` — the worker command line (default: this binary
//!   re-invoked with `--worker`; `ba-bench worker` also speaks the
//!   protocol);
//! * `--worker` — run *as* a wire-protocol worker on stdin/stdout instead
//!   of an experiment (what `--workers` spawns);
//! * `--format md[,csv][,json]|all` — output formats (default `md`);
//! * `--out DIR` — where `BENCH_<experiment>.{json,csv}` are written.

use std::path::PathBuf;
use std::time::Instant;

use ba_core::cert::CertEncoding;
use ba_sim::{DelayDist, FaultPlan, PopulationMode, TransportSpec};

use crate::dist::{self, DistConfig};
use crate::report::{quarantine_summary, to_csv, to_json};
use crate::sweep::{default_threads, Sweep, SweepReport};
use crate::wire::{FailMode, FailPlan};

/// Grid size selector.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Grid {
    /// The full grid regenerating the paper's numbers.
    Full,
    /// A reduced grid (smallest `n`, few cells) for CI smoke runs.
    Smoke,
}

/// Parsed command line of one experiment binary.
#[derive(Clone, Debug)]
pub struct Cli {
    /// The experiment name (`e2_multicast_complexity`, ...).
    pub experiment: &'static str,
    /// `--seeds` override, if given.
    pub seeds: Option<u64>,
    /// Grid size.
    pub grid: Grid,
    /// Sweep worker count.
    pub threads: usize,
    /// `--sim-threads` override: in-execution worker count applied to every
    /// scenario in every sweep (`None` = keep scenario-specified values).
    pub sim_threads: Option<usize>,
    /// `--population` override: population engine applied to every scenario
    /// in every sweep (`None` = keep scenario-specified values).
    pub population: Option<PopulationMode>,
    /// `--transport` override: delivery transport applied to every scenario
    /// in every sweep (`None` = keep scenario-specified values, unless one
    /// of the latency shorthand knobs below implies a latency transport).
    pub transport: Option<TransportSpec>,
    /// `--cert-encoding` override: quorum-certificate encoding applied to
    /// every scenario in every sweep (`None` = keep scenario-specified
    /// values).
    pub cert_encoding: Option<CertEncoding>,
    /// `--faults` override: network-fault plan layered over every
    /// scenario's transport (`None` = keep scenario-specified plans).
    pub faults: Option<FaultPlan>,
    /// `--round-ms` shorthand: latency-transport round duration override.
    pub round_ms: Option<u64>,
    /// `--gst` shorthand: latency-transport global stabilization time.
    pub gst: Option<u64>,
    /// `--delay-dist` shorthand: latency-transport delay distribution.
    pub delay_dist: Option<DelayDist>,
    /// `--workers`: distribute cells across this many worker subprocesses
    /// (`None` = in-process execution on [`Cli::threads`]).
    pub workers: Option<usize>,
    /// `--worker-cmd`: the worker command line (`None` = this binary with
    /// `--worker`).
    pub worker_cmd: Option<Vec<String>>,
    /// `--worker`: serve the wire protocol instead of running sweeps
    /// ([`Cli::parse`] acts on this before returning).
    pub worker_mode: bool,
    /// `--worker-fail-after`: fault-injection hook — die mid-cell after
    /// completing this many cells (workers only; used by tests and the CI
    /// kill-a-worker step).
    pub worker_fail: Option<FailPlan>,
    /// Emit the experiment's markdown tables on stdout.
    emit_md: bool,
    /// Emit `BENCH_<experiment>.csv`.
    emit_csv: bool,
    /// Emit `BENCH_<experiment>.json`.
    emit_json: bool,
    /// Output directory for CSV/JSON (default `.`).
    out: PathBuf,
}

impl Cli {
    /// Parses `std::env::args` (exits on `--help` or bad flags). Under
    /// `--worker` this never returns: the process serves the distributed
    /// wire protocol on stdin/stdout and exits with the worker's status.
    pub fn parse(experiment: &'static str) -> Cli {
        let cli = Cli::parse_from(experiment, std::env::args().skip(1));
        if cli.worker_mode {
            std::process::exit(crate::wire::worker_main(cli.worker_fail));
        }
        cli
    }

    /// Parses an explicit argument list (testing hook).
    pub fn parse_from(experiment: &'static str, args: impl IntoIterator<Item = String>) -> Cli {
        let mut cli = Cli {
            experiment,
            seeds: None,
            grid: Grid::Full,
            threads: default_threads(),
            sim_threads: None,
            population: None,
            transport: None,
            cert_encoding: None,
            faults: None,
            round_ms: None,
            gst: None,
            delay_dist: None,
            workers: None,
            worker_cmd: None,
            worker_mode: false,
            worker_fail: None,
            emit_md: true,
            emit_csv: false,
            emit_json: false,
            out: PathBuf::from("."),
        };
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            let mut value =
                |flag: &str| args.next().unwrap_or_else(|| die(&format!("{flag} needs a value")));
            match arg.as_str() {
                "--seeds" => {
                    cli.seeds = Some(
                        value("--seeds").parse().unwrap_or_else(|_| die("--seeds: not a number")),
                    )
                }
                "--grid" => {
                    cli.grid = match value("--grid").as_str() {
                        "full" => Grid::Full,
                        "smoke" => Grid::Smoke,
                        other => die(&format!("--grid: unknown grid {other:?} (full|smoke)")),
                    }
                }
                "--threads" => {
                    let t: usize = value("--threads")
                        .parse()
                        .unwrap_or_else(|_| die("--threads: not a number"));
                    cli.threads = t.max(1);
                }
                "--sim-threads" => {
                    let t: usize = value("--sim-threads")
                        .parse()
                        .unwrap_or_else(|_| die("--sim-threads: not a number"));
                    cli.sim_threads = Some(t.max(1));
                }
                "--population" => {
                    let raw = value("--population");
                    cli.population = Some(raw.parse().unwrap_or_else(|e: String| die(&e)));
                }
                "--transport" => {
                    let raw = value("--transport");
                    cli.transport = Some(raw.parse().unwrap_or_else(|e: String| die(&e)));
                }
                "--cert-encoding" => {
                    let raw = value("--cert-encoding");
                    cli.cert_encoding = Some(raw.parse().unwrap_or_else(|e: String| die(&e)));
                }
                "--faults" => {
                    let raw = value("--faults");
                    cli.faults = Some(raw.parse().unwrap_or_else(|e: String| die(&e)));
                }
                "--round-ms" => {
                    let ms: u64 = value("--round-ms")
                        .parse()
                        .unwrap_or_else(|_| die("--round-ms: not a number"));
                    if ms == 0 {
                        die("--round-ms must be positive");
                    }
                    cli.round_ms = Some(ms);
                }
                "--gst" => {
                    cli.gst =
                        Some(value("--gst").parse().unwrap_or_else(|_| die("--gst: not a number")))
                }
                "--delay-dist" => {
                    let raw = value("--delay-dist");
                    cli.delay_dist = Some(raw.parse().unwrap_or_else(|e: String| die(&e)));
                }
                "--workers" => {
                    let w: usize = value("--workers")
                        .parse()
                        .unwrap_or_else(|_| die("--workers: not a number"));
                    cli.workers = Some(w.max(1));
                }
                "--worker-cmd" => {
                    let cmd = dist::split_command(&value("--worker-cmd"));
                    if cmd.is_empty() {
                        die("--worker-cmd: empty command");
                    }
                    cli.worker_cmd = Some(cmd);
                }
                "--worker" => cli.worker_mode = true,
                "--worker-fail-after" => {
                    let after: u64 = value("--worker-fail-after")
                        .parse()
                        .unwrap_or_else(|_| die("--worker-fail-after: not a number"));
                    cli.worker_fail = Some(FailPlan::with_after(cli.worker_fail, after));
                }
                "--worker-fail-mode" => {
                    let raw = value("--worker-fail-mode");
                    let mode = FailMode::parse(&raw).unwrap_or_else(|| {
                        die(&format!("--worker-fail-mode: unknown mode {raw:?}"))
                    });
                    cli.worker_fail = Some(FailPlan::with_mode(cli.worker_fail, mode));
                }
                "--format" => {
                    cli.emit_md = false;
                    cli.emit_csv = false;
                    cli.emit_json = false;
                    for fmt in value("--format").split(',') {
                        match fmt {
                            "md" | "markdown" => cli.emit_md = true,
                            "csv" => cli.emit_csv = true,
                            "json" => cli.emit_json = true,
                            "all" => {
                                cli.emit_md = true;
                                cli.emit_csv = true;
                                cli.emit_json = true;
                            }
                            other => die(&format!("--format: unknown format {other:?}")),
                        }
                    }
                }
                "--out" => cli.out = PathBuf::from(value("--out")),
                "--help" | "-h" => {
                    println!(
                        "{experiment} — see EXPERIMENTS.md\n\n\
                         USAGE: {experiment} [--seeds N] [--grid full|smoke] [--threads N]\n\
                         \x20                 [--sim-threads N] [--population sparse|dense]\n\
                         \x20                 [--transport lockstep|latency[:k=v,..]|tcp]\n\
                         \x20                 [--cert-encoding vector|aggregate]\n\
                         \x20                 [--faults PLAN]\n\
                         \x20                 [--round-ms MS] [--gst MS] [--delay-dist DIST]\n\
                         \x20                 [--workers N] [--worker-cmd CMD]\n\
                         \x20                 [--format md,csv,json|all] [--out DIR]\n\
                         \x20      {experiment} --worker   (serve the distributed wire protocol;\n\
                         \x20                 see docs/DISTRIBUTED.md)"
                    );
                    std::process::exit(0);
                }
                other => die(&format!("unknown flag {other:?} (try --help)")),
            }
        }
        cli
    }

    /// The seed count to use where the full grid would use `default`.
    pub fn seeds_or(&self, default: u64) -> u64 {
        self.seeds.unwrap_or(default)
    }

    /// True under `--grid smoke`.
    pub fn smoke(&self) -> bool {
        self.grid == Grid::Smoke
    }

    /// Whether the binary should print its markdown tables.
    pub fn markdown(&self) -> bool {
        self.emit_md
    }

    /// Resolves `--transport` and the latency shorthand knobs into one
    /// grid-wide transport override (`None` = keep scenario-specified
    /// transports). `--round-ms`/`--gst`/`--delay-dist` imply a latency
    /// transport when `--transport` is absent and refuse to modify an
    /// explicit non-latency one.
    pub fn transport_override(&self) -> Option<TransportSpec> {
        let knobs = self.round_ms.is_some() || self.gst.is_some() || self.delay_dist.is_some();
        let base = match self.transport {
            Some(t) => t,
            None if knobs => TransportSpec::latency_zero(),
            None => return None,
        };
        if !knobs {
            return Some(base);
        }
        let TransportSpec::Latency { round_ms, gst_ms, dist } = base else {
            die(&format!(
                "--round-ms/--gst/--delay-dist configure the latency transport, \
                 but --transport is {base}"
            ));
        };
        Some(TransportSpec::Latency {
            round_ms: self.round_ms.unwrap_or(round_ms),
            gst_ms: self.gst.unwrap_or(gst_ms),
            dist: self.delay_dist.unwrap_or(dist),
        })
    }

    /// Executes the sweeps on the configured worker count — in-process
    /// threads, or (under `--workers`) a crash-recovering pool of worker
    /// subprocesses producing byte-identical reports — applying any
    /// `--sim-threads` override to every scenario first.
    pub fn run(&self, mut sweeps: Vec<Sweep>) -> Vec<SweepReport> {
        if let Some(sim_threads) = self.sim_threads {
            for sweep in &mut sweeps {
                for scenario in &mut sweep.scenarios {
                    scenario.sim_threads = sim_threads;
                }
            }
        }
        if let Some(population) = self.population {
            for sweep in &mut sweeps {
                for scenario in &mut sweep.scenarios {
                    scenario.population = population;
                }
            }
        }
        if let Some(transport) = self.transport_override() {
            for sweep in &mut sweeps {
                for scenario in &mut sweep.scenarios {
                    scenario.transport = transport;
                }
            }
        }
        if let Some(encoding) = self.cert_encoding {
            for sweep in &mut sweeps {
                for scenario in &mut sweep.scenarios {
                    scenario.cert_encoding = encoding;
                }
            }
        }
        if let Some(plan) = self.faults {
            for sweep in &mut sweeps {
                for scenario in &mut sweep.scenarios {
                    scenario.fault_plan = Some(plan);
                }
            }
        }
        let start = Instant::now();
        let (reports, how) = match self.workers {
            Some(workers) => {
                let worker_cmd = match self.worker_cmd.clone() {
                    Some(cmd) => cmd,
                    None => dist::self_worker_cmd().unwrap_or_else(|e| die(&e)),
                };
                let cfg = DistConfig::new(workers, worker_cmd);
                let reports = dist::run_sweeps(&sweeps, &cfg).unwrap_or_else(|e| die(&e));
                (reports, format!("{workers} worker process(es)"))
            }
            None => (
                sweeps.iter().map(|s| s.run(self.threads)).collect(),
                format!("{} thread(s)", self.threads),
            ),
        };
        eprintln!(
            "[{}] {} sweep(s), {} runs, {how}: {:.2?}",
            self.experiment,
            reports.len(),
            reports.iter().flat_map(|r| r.cells.iter()).map(|c| c.runs.len()).sum::<usize>(),
            start.elapsed(),
        );
        // Quarantined cells are surfaced, never silently dropped: in the
        // markdown stream when enabled, on stderr always.
        if let Some(summary) = quarantine_summary(&reports) {
            if self.emit_md {
                println!("{summary}");
            }
            eprint!("[{}] {summary}", self.experiment);
        }
        reports
    }

    /// Writes the structured outputs selected by `--format` and returns the
    /// paths written.
    pub fn write_outputs(&self, reports: &[SweepReport]) -> Vec<PathBuf> {
        let mut written = Vec::new();
        if self.emit_json {
            let path = self.out.join(format!("BENCH_{}.json", self.experiment));
            write_file(&path, &to_json(self.experiment, reports));
            written.push(path);
        }
        if self.emit_csv {
            let path = self.out.join(format!("BENCH_{}.csv", self.experiment));
            write_file(&path, &to_csv(reports));
            written.push(path);
        }
        for path in &written {
            eprintln!("[{}] wrote {}", self.experiment, path.display());
        }
        written
    }
}

fn write_file(path: &PathBuf, contents: &str) {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)
                .unwrap_or_else(|e| die(&format!("creating {}: {e}", dir.display())));
        }
    }
    std::fs::write(path, contents)
        .unwrap_or_else(|e| die(&format!("writing {}: {e}", path.display())));
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Cli {
        Cli::parse_from("e_test", args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let cli = parse(&[]);
        assert_eq!(cli.seeds_or(20), 20);
        assert!(!cli.smoke());
        assert!(cli.markdown());
        assert!(cli.threads >= 1);
        assert_eq!(cli.sim_threads, None);
    }

    #[test]
    fn sim_threads_flag_overrides_scenarios() {
        use crate::scenario::{ProtocolSpec, Scenario};
        let cli = parse(&["--sim-threads", "3"]);
        assert_eq!(cli.sim_threads, Some(3));
        let sweep = Sweep::new(
            "t",
            1,
            vec![Scenario::new("q", 5, ProtocolSpec::QuadraticHalf).sim_threads(1)],
        );
        let reports = cli.run(vec![sweep]);
        // The override is applied before execution; the run itself must be
        // indistinguishable from a serial one.
        let serial =
            Sweep::new("t", 1, vec![Scenario::new("q", 5, ProtocolSpec::QuadraticHalf)]).run(1);
        assert_eq!(
            reports[0].cells[0].samples("multicasts"),
            serial.cells[0].samples("multicasts")
        );
    }

    #[test]
    fn population_flag_overrides_scenarios() {
        use crate::scenario::{ProtocolSpec, Scenario};
        let cli = parse(&["--population", "sparse"]);
        assert_eq!(cli.population, Some(PopulationMode::Sparse));
        // QuadraticHalf is not sparse-capable: the run must silently fall
        // back and match the dense report.
        let sweep = Sweep::new("t", 1, vec![Scenario::new("q", 5, ProtocolSpec::QuadraticHalf)]);
        let reports = cli.run(vec![sweep]);
        let dense =
            Sweep::new("t", 1, vec![Scenario::new("q", 5, ProtocolSpec::QuadraticHalf)]).run(1);
        assert_eq!(reports[0].cells[0].samples("multicasts"), dense.cells[0].samples("multicasts"));
        assert_eq!(parse(&[]).population, None);
    }

    #[test]
    fn transport_flag_overrides_scenarios() {
        use crate::scenario::{ProtocolSpec, Scenario};
        let cli = parse(&["--transport", "latency:round_ms=5,gst_ms=0,dist=zero"]);
        assert_eq!(
            cli.transport_override(),
            Some(TransportSpec::Latency { round_ms: 5, gst_ms: 0, dist: DelayDist::Zero })
        );
        // Zero-delay latency with GST 0 is provably equivalent to lockstep:
        // the overridden run must match a lockstep one observable for
        // observable (modulo the latency-only observables).
        let sweep = Sweep::new("t", 1, vec![Scenario::new("q", 5, ProtocolSpec::QuadraticHalf)]);
        let reports = cli.run(vec![sweep]);
        let lockstep =
            Sweep::new("t", 1, vec![Scenario::new("q", 5, ProtocolSpec::QuadraticHalf)]).run(1);
        assert_eq!(
            reports[0].cells[0].samples("multicasts"),
            lockstep.cells[0].samples("multicasts")
        );
        assert_eq!(reports[0].cells[0].samples("rounds"), lockstep.cells[0].samples("rounds"));
        // The latency transport reports what lockstep cannot: delivery stats.
        assert!(!reports[0].cells[0].samples("latency_delivered").is_empty());
        assert!(lockstep.cells[0].samples("latency_delivered").is_empty());
    }

    #[test]
    fn cert_encoding_flag_overrides_scenarios() {
        use crate::scenario::{ProtocolSpec, Scenario};
        let cli = parse(&["--cert-encoding", "aggregate"]);
        assert_eq!(cli.cert_encoding, Some(CertEncoding::Aggregate));
        // Aggregate certificates change message sizes but provably not the
        // protocol's decisions: every non-bit observable must match the
        // vector run.
        let sweep = Sweep::new("t", 2, vec![Scenario::new("q", 9, ProtocolSpec::QuadraticHalf)]);
        let reports = cli.run(vec![sweep]);
        let vector =
            Sweep::new("t", 2, vec![Scenario::new("q", 9, ProtocolSpec::QuadraticHalf)]).run(1);
        for obs in ["rounds", "multicasts", "unicasts", "decision", "all_ok"] {
            assert_eq!(
                reports[0].cells[0].samples(obs),
                vector.cells[0].samples(obs),
                "{obs} must be encoding-independent"
            );
        }
        // ...while the certificate share of the bits genuinely shrinks.
        let agg_bits = reports[0].cells[0].samples("cert_bits");
        let vec_bits = vector.cells[0].samples("cert_bits");
        assert!(agg_bits.iter().sum::<f64>() < vec_bits.iter().sum::<f64>());
        assert_eq!(parse(&[]).cert_encoding, None);
    }

    #[test]
    fn faults_flag_overrides_scenarios() {
        use crate::scenario::{ProtocolSpec, Scenario};
        let cli = parse(&["--faults", "none"]);
        assert_eq!(cli.faults, Some(FaultPlan::default()));
        // An empty plan wraps every transport in the fault layer but is a
        // structural pass-through: observables match the bare run exactly
        // and no fault stats are recorded.
        let sweep = Sweep::new("t", 1, vec![Scenario::new("q", 5, ProtocolSpec::QuadraticHalf)]);
        let reports = cli.run(vec![sweep]);
        let bare =
            Sweep::new("t", 1, vec![Scenario::new("q", 5, ProtocolSpec::QuadraticHalf)]).run(1);
        assert_eq!(reports[0].cells[0].samples("multicasts"), bare.cells[0].samples("multicasts"));
        assert_eq!(reports[0].cells[0].samples("rounds"), bare.cells[0].samples("rounds"));
        assert!(
            reports[0].cells[0].samples("faults_dropped").is_empty(),
            "empty plan keeps no fault stats"
        );
        // A certain-drop plan parses, records fault stats, and degrades
        // liveness without touching safety.
        let cli = parse(&["--faults", "drop:p=1"]);
        let sweep = Sweep::new("t", 1, vec![Scenario::new("q", 5, ProtocolSpec::QuadraticHalf)]);
        let reports = cli.run(vec![sweep]);
        let cell = &reports[0].cells[0];
        assert!(cell.samples("faults_dropped").iter().sum::<f64>() > 0.0);
        assert_eq!(cell.count("consistent"), 1, "safety holds under total drop");
        assert_eq!(cell.count("valid"), 1);
        assert_eq!(parse(&[]).faults, None);
    }

    #[test]
    fn latency_knobs_imply_latency_transport() {
        let cli = parse(&["--gst", "40", "--delay-dist", "uniform:1..5", "--round-ms", "20"]);
        assert_eq!(
            cli.transport_override(),
            Some(TransportSpec::Latency {
                round_ms: 20,
                gst_ms: 40,
                dist: DelayDist::Uniform { lo_ms: 1, hi_ms: 5 },
            })
        );
        // Knobs patch an explicit latency transport rather than replacing it.
        let cli = parse(&["--transport", "latency:round_ms=7", "--gst", "3"]);
        assert_eq!(
            cli.transport_override(),
            Some(TransportSpec::Latency { round_ms: 7, gst_ms: 3, dist: DelayDist::Zero })
        );
        assert_eq!(parse(&[]).transport_override(), None);
    }

    #[test]
    fn flags_parse() {
        let cli = parse(&[
            "--seeds",
            "3",
            "--grid",
            "smoke",
            "--threads",
            "4",
            "--format",
            "json,csv",
            "--out",
            "reports",
        ]);
        assert_eq!(cli.seeds_or(20), 3);
        assert!(cli.smoke());
        assert_eq!(cli.threads, 4);
        assert!(!cli.markdown());
        assert!(cli.emit_json && cli.emit_csv);
        assert_eq!(cli.out, PathBuf::from("reports"));
    }

    #[test]
    fn format_all() {
        let cli = parse(&["--format", "all"]);
        assert!(cli.markdown() && cli.emit_csv && cli.emit_json);
    }
}
