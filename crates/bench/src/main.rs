//! The `ba-bench` tool binary — report maintenance and distributed-worker
//! subcommands.
//!
//! ```text
//! ba-bench diff <baseline.json> <candidate.json>
//!               [--abs-tol X] [--rel-tol Y] [--ignore m1,m2]
//!               [--ignore-observable GLOB] [--quiet]
//! ba-bench worker [--fail-after N] [--fail-mode exit|abort|kill]
//! ```
//!
//! `diff` compares two `BENCH_*.json` reports (schema
//! `ba-bench/sweep-report/v1`) cell by cell and exits 0 when the candidate
//! matches the baseline within tolerance, 1 on drift, 2 on usage or I/O
//! errors. The default tolerance is exact equality — the CI configuration,
//! since the smoke grid is deterministic. Ignore entries (both the
//! comma-separated `--ignore` list and the repeatable
//! `--ignore-observable`) are glob patterns: `--ignore-observable
//! 'latency_*'` exempts every wall-clock latency observable at once. See
//! EXPERIMENTS.md ("Baselines") for the regeneration workflow.
//!
//! `worker` serves the distributed sweep wire protocol (schema
//! `ba-bench/cell-stream/v1`) on stdin/stdout: one cell descriptor in, one
//! flushed result line out, until EOF — the subprocess an experiment
//! binary's `--workers N` coordinator drives. `--fail-after`/`--fail-mode`
//! are the fault-injection hooks the crash-recovery tests and the CI
//! kill-a-worker step use: complete N cells, then die mid-cell without
//! replying. See docs/DISTRIBUTED.md.

use ba_bench::baseline::{diff_reports, DriftKind, Tolerance};
use ba_bench::wire::{worker_main, FailMode, FailPlan};

fn main() {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("diff") => diff_cmd(args.collect()),
        Some("worker") => std::process::exit(worker_cmd(args.collect())),
        Some("--help") | Some("-h") | None => {
            println!(
                "ba-bench — report maintenance and distributed-worker tool\n\n\
                 USAGE:\n  ba-bench diff <baseline.json> <candidate.json>\n\
                 \x20              [--abs-tol X] [--rel-tol Y] [--ignore m1,m2]\n\
                 \x20              [--ignore-observable GLOB] [--quiet]\n\
                 \x20 ba-bench worker [--fail-after N] [--fail-mode exit|abort|kill]\n\n\
                 diff exits 0 when the candidate matches the baseline within tolerance,\n\
                 1 on drift, 2 on usage/IO errors. worker serves the distributed sweep\n\
                 wire protocol on stdin/stdout (see docs/DISTRIBUTED.md)."
            );
        }
        Some(other) => die(&format!("unknown subcommand {other:?} (try --help)")),
    }
}

fn worker_cmd(args: Vec<String>) -> i32 {
    let mut fail: Option<FailPlan> = None;
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        let mut value =
            |flag: &str| iter.next().unwrap_or_else(|| die(&format!("{flag} needs a value")));
        match arg.as_str() {
            "--fail-after" => {
                let after: u64 = value("--fail-after")
                    .parse()
                    .unwrap_or_else(|_| die("--fail-after: not a number"));
                fail = Some(FailPlan::with_after(fail, after));
            }
            "--fail-mode" => {
                let raw = value("--fail-mode");
                let mode = FailMode::parse(&raw)
                    .unwrap_or_else(|| die(&format!("--fail-mode: unknown mode {raw:?}")));
                fail = Some(FailPlan::with_mode(fail, mode));
            }
            other => die(&format!("unknown worker flag {other:?}")),
        }
    }
    worker_main(fail)
}

fn diff_cmd(args: Vec<String>) {
    let mut files: Vec<String> = Vec::new();
    let mut tol = Tolerance::default();
    let mut quiet = false;
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        let mut value =
            |flag: &str| iter.next().unwrap_or_else(|| die(&format!("{flag} needs a value")));
        match arg.as_str() {
            "--abs-tol" => {
                tol.abs =
                    value("--abs-tol").parse().unwrap_or_else(|_| die("--abs-tol: not a number"))
            }
            "--rel-tol" => {
                tol.rel =
                    value("--rel-tol").parse().unwrap_or_else(|_| die("--rel-tol: not a number"))
            }
            "--ignore" => tol.ignore.extend(value("--ignore").split(',').map(str::to_string)),
            "--ignore-observable" => tol.ignore.push(value("--ignore-observable")),
            "--quiet" => quiet = true,
            other if other.starts_with("--") => die(&format!("unknown flag {other:?}")),
            path => files.push(path.to_string()),
        }
    }
    let [baseline_path, candidate_path] = files.as_slice() else {
        die("diff needs exactly two files: <baseline.json> <candidate.json>");
    };
    let read = |path: &str| {
        std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("reading {path}: {e}")))
    };
    let report =
        diff_reports(&read(baseline_path), &read(candidate_path), &tol).unwrap_or_else(|e| die(&e));

    if report.passed() {
        if !quiet {
            println!(
                "OK: {candidate_path} matches {baseline_path} ({} observables compared)",
                report.compared
            );
        }
        return;
    }
    let structural = report.drifts.iter().filter(|d| d.kind == DriftKind::Structural).count();
    let value = report.drifts.len() - structural;
    eprint!("{}", report.render());
    eprintln!(
        "DRIFT: {candidate_path} diverges from {baseline_path}: \
         {structural} structural, {value} value finding(s) \
         ({} observables compared)",
        report.compared
    );
    eprintln!(
        "If this change is intentional, regenerate the baseline \
         (see EXPERIMENTS.md, \"Baselines\")."
    );
    std::process::exit(1);
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
