//! The **distributed sweep coordinator**: sweep cells fanned out across
//! worker *subprocesses* with crash recovery, behind the same
//! [`SweepReport`] schema as the in-process engine.
//!
//! ## Execution model
//!
//! The unit of distribution is one **cell** (a scenario × its seeds) — the
//! same unit the soak stream writes to disk. The coordinator spawns
//! `workers` subprocesses (`<current-exe> --worker` by default, any
//! `ba-bench worker`-speaking command via `worker_cmd`), connected over
//! stdin/stdout pipes, and dispatches cell descriptors from an in-order
//! work queue: exactly the atomic-cursor semantics of the in-process
//! engine, with the cursor living in the coordinator. Results are written
//! into per-cell slots and reassembled in grid order, so the report is
//! **byte-identical** to `Sweep::run(1)` regardless of worker count,
//! dispatch interleaving, or worker death — each cell's records depend only
//! on its scenario and seeds, never on which process computed them.
//!
//! ## Crash recovery
//!
//! A worker that dies mid-cell (EOF on its stdout with a cell in flight,
//! a malformed reply, or a reply for the wrong cell) is discarded and
//! replaced; its in-flight cell is re-dispatched to the fresh replacement.
//! A cell whose execution has now killed [`DistConfig::max_attempts`]
//! workers is **quarantined**: the coordinator records a structured
//! [`CellError`] in the cell's report slot instead of retrying forever, and
//! the sweep completes without it. An in-band `error` refusal (the worker
//! decoded the descriptor but cannot execute it) quarantines immediately —
//! retrying a deterministic refusal elsewhere cannot succeed.
//!
//! Clean runs and recovered runs therefore render identical JSON; only a
//! genuinely poisoned cell changes the report, and it does so loudly (a
//! `"error"` record in the JSON, a line in the markdown summary, and a
//! structural finding in `ba-bench diff`).

use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::mpsc::{Receiver, Sender};

use crate::sweep::{CellError, CellReport, RunRecord, Sweep, SweepReport};
use crate::wire::{decode_reply, encode_descriptor, CellDescriptor, WorkerReply};

/// Configuration of a distributed run.
#[derive(Clone, Debug)]
pub struct DistConfig {
    /// Worker subprocesses to keep alive (≥ 1).
    pub workers: usize,
    /// The worker command line (program + args). The spawned process must
    /// speak the cell-stream wire protocol on stdin/stdout.
    pub worker_cmd: Vec<String>,
    /// Worker deaths attributable to one cell before it is quarantined.
    pub max_attempts: u32,
}

impl DistConfig {
    /// A configuration running `workers` copies of `worker_cmd`. The
    /// default quarantine threshold is 2: a cell that has killed two
    /// workers is poisoned, not unlucky.
    pub fn new(workers: usize, worker_cmd: Vec<String>) -> DistConfig {
        DistConfig { workers: workers.max(1), worker_cmd, max_attempts: 2 }
    }
}

/// The default worker command: this very binary re-invoked in `--worker`
/// mode (every experiment binary's CLI understands it).
pub fn self_worker_cmd() -> Result<Vec<String>, String> {
    let exe = std::env::current_exe().map_err(|e| format!("locating current exe: {e}"))?;
    Ok(vec![exe.to_string_lossy().into_owned(), "--worker".into()])
}

/// Splits a `--worker-cmd` string into program + arguments: whitespace
/// separates tokens, single or double quotes group a token containing
/// spaces (e.g. a path with a space, or an `ssh host 'ba-bench worker'`
/// bridge). No escape processing beyond that — this is a token grouper,
/// not a shell.
pub fn split_command(s: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    let mut in_token = false;
    let mut quote: Option<char> = None;
    for c in s.chars() {
        match quote {
            Some(q) if c == q => quote = None,
            Some(_) => current.push(c),
            None if c == '\'' || c == '"' => {
                quote = Some(c);
                in_token = true;
            }
            None if c.is_whitespace() => {
                if in_token {
                    tokens.push(std::mem::take(&mut current));
                    in_token = false;
                }
            }
            None => {
                current.push(c);
                in_token = true;
            }
        }
    }
    if in_token {
        tokens.push(current);
    }
    tokens
}

impl Sweep {
    /// Executes the grid on worker subprocesses and assembles the report —
    /// byte-identical to [`Sweep::run`] whenever no cell is quarantined.
    ///
    /// # Errors
    ///
    /// Fails when workers cannot be spawned at all (a broken
    /// `worker_cmd`); worker *deaths* are recovered from, not errors.
    pub fn run_distributed(&self, cfg: &DistConfig) -> Result<SweepReport, String> {
        Ok(run_sweeps(std::slice::from_ref(self), cfg)?.pop().expect("one report per sweep"))
    }
}

/// Executes several sweeps' cells through one shared worker pool (the
/// distributed counterpart of running each sweep in turn) and assembles
/// one report per sweep, in order.
///
/// # Errors
///
/// Fails when no worker can be spawned (a broken `worker_cmd`).
pub fn run_sweeps(sweeps: &[Sweep], cfg: &DistConfig) -> Result<Vec<SweepReport>, String> {
    // Flatten the grids into the dispatch order an in-process run would
    // use: sweeps in order, cells in grid order.
    let tasks: Vec<(usize, usize)> = sweeps
        .iter()
        .enumerate()
        .flat_map(|(s, sweep)| (0..sweep.scenarios.len()).map(move |c| (s, c)))
        .collect();
    let slots =
        if tasks.is_empty() { Vec::new() } else { Coordinator::new(sweeps, &tasks, cfg)?.run()? };

    let mut slot_iter = slots.into_iter();
    Ok(sweeps
        .iter()
        .map(|sweep| SweepReport {
            title: sweep.title.clone(),
            seeds: sweep.seeds,
            cells: sweep
                .scenarios
                .iter()
                .map(|scenario| match slot_iter.next().expect("one slot per cell") {
                    Ok(runs) => CellReport { scenario: scenario.clone(), runs, error: None },
                    Err(err) => CellReport {
                        scenario: scenario.clone(),
                        runs: Vec::new(),
                        error: Some(err),
                    },
                })
                .collect(),
        })
        .collect())
}

/// Reader-thread → coordinator events.
enum Event {
    /// One line of worker stdout (trailing newline stripped).
    Line(u64, String),
    /// The worker's stdout closed (it exited or was killed).
    Eof(u64),
}

/// One spawned worker and its plumbing.
struct WorkerHandle {
    child: Child,
    /// `None` once retired (closing stdin is the shutdown signal).
    stdin: Option<ChildStdin>,
    reader: Option<std::thread::JoinHandle<()>>,
    /// Set once the child has been waited on (its Eof is cleanup-only).
    reaped: bool,
}

struct Coordinator<'a> {
    sweeps: &'a [Sweep],
    tasks: &'a [(usize, usize)],
    cfg: &'a DistConfig,
    /// Per-task result slot: runs on success, the quarantine record on
    /// failure.
    slots: Vec<Option<Result<Vec<RunRecord>, CellError>>>,
    /// Worker deaths attributed to each task so far.
    attempts: Vec<u32>,
    /// Undispatched task indices, in grid order.
    queue: VecDeque<usize>,
    filled: usize,
    workers: HashMap<u64, WorkerHandle>,
    /// Which task each busy worker is executing.
    busy: HashMap<u64, usize>,
    next_key: u64,
    tx: Sender<Event>,
    rx: Receiver<Event>,
}

impl<'a> Coordinator<'a> {
    fn new(
        sweeps: &'a [Sweep],
        tasks: &'a [(usize, usize)],
        cfg: &'a DistConfig,
    ) -> Result<Coordinator<'a>, String> {
        if cfg.worker_cmd.is_empty() {
            return Err("empty worker command".into());
        }
        let (tx, rx) = std::sync::mpsc::channel();
        Ok(Coordinator {
            sweeps,
            tasks,
            cfg,
            slots: vec![None; tasks.len()],
            attempts: vec![0; tasks.len()],
            queue: (0..tasks.len()).collect(),
            filled: 0,
            workers: HashMap::new(),
            busy: HashMap::new(),
            next_key: 0,
            tx,
            rx,
        })
    }

    fn run(mut self) -> Result<Vec<Result<Vec<RunRecord>, CellError>>, String> {
        for _ in 0..self.cfg.workers.min(self.tasks.len()) {
            let key = self.spawn()?;
            self.dispatch_next(key);
        }
        while self.filled < self.tasks.len() {
            let event = self.rx.recv().expect("a live worker or reader holds the sender");
            match event {
                Event::Line(key, line) => self.on_line(key, line)?,
                Event::Eof(key) => self.on_eof(key)?,
            }
        }
        self.shutdown();
        Ok(self.slots.into_iter().map(|s| s.expect("all slots filled")).collect())
    }

    /// Spawns one worker and its reader thread.
    fn spawn(&mut self) -> Result<u64, String> {
        let cmd = &self.cfg.worker_cmd;
        let mut child = Command::new(&cmd[0])
            .args(&cmd[1..])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .map_err(|e| format!("spawning worker {:?}: {e}", cmd[0]))?;
        let stdin = child.stdin.take().expect("piped stdin");
        let stdout = child.stdout.take().expect("piped stdout");
        let key = self.next_key;
        self.next_key += 1;
        let tx = self.tx.clone();
        let reader = std::thread::spawn(move || {
            let mut lines = BufReader::new(stdout);
            let mut buf = String::new();
            loop {
                buf.clear();
                match lines.read_line(&mut buf) {
                    Ok(0) | Err(_) => {
                        let _ = tx.send(Event::Eof(key));
                        break;
                    }
                    Ok(_) => {
                        let _ = tx.send(Event::Line(key, buf.trim_end().to_string()));
                    }
                }
            }
        });
        self.workers.insert(
            key,
            WorkerHandle { child, stdin: Some(stdin), reader: Some(reader), reaped: false },
        );
        Ok(key)
    }

    /// Sends `task`'s descriptor to worker `key` and marks it busy. A write
    /// failure means the worker is already dying — its reader's `Eof` event
    /// performs the recovery, so the failure is deliberately ignored here.
    fn dispatch(&mut self, key: u64, task: usize) {
        let (s, c) = self.tasks[task];
        let sweep = &self.sweeps[s];
        let desc = CellDescriptor {
            id: task as u64,
            sweep: sweep.title.clone(),
            seeds: sweep.seeds,
            scenario: sweep.scenarios[c].clone(),
        };
        self.busy.insert(key, task);
        let handle = self.workers.get_mut(&key).expect("dispatch to a live worker");
        let stdin = handle.stdin.as_mut().expect("dispatch to a non-retired worker");
        let _ = writeln!(stdin, "{}", encode_descriptor(&desc)).and_then(|()| stdin.flush());
    }

    /// Hands worker `key` the next queued task, or retires it (closes its
    /// stdin; the worker exits on EOF) when the queue is empty.
    fn dispatch_next(&mut self, key: u64) {
        match self.queue.pop_front() {
            Some(task) => self.dispatch(key, task),
            None => {
                if let Some(handle) = self.workers.get_mut(&key) {
                    handle.stdin = None;
                }
            }
        }
    }

    fn on_line(&mut self, key: u64, line: String) -> Result<(), String> {
        let Some(&task) = self.busy.get(&key) else {
            // Chatter from a worker that owes us nothing (or one already
            // condemned): a protocol violation; discard the worker.
            self.condemn(key);
            return Ok(());
        };
        match decode_reply(&line) {
            Ok(WorkerReply::Result { id, runs }) if id == task as u64 => {
                self.busy.remove(&key);
                self.fill(task, Ok(runs));
                self.dispatch_next(key);
            }
            Ok(WorkerReply::Refusal { id, error }) if id == task as u64 => {
                // Deterministic in-band refusal: retrying on another worker
                // of the same build cannot succeed. Quarantine now.
                self.busy.remove(&key);
                let attempts = self.attempts[task] + 1;
                self.fill(
                    task,
                    Err(CellError {
                        attempts,
                        detail: format!("worker refused the cell: {error}"),
                    }),
                );
                self.dispatch_next(key);
            }
            Ok(reply) => {
                // Duplicate or out-of-order id: the stream can no longer be
                // trusted. Kill the worker and recover its in-flight cell.
                let got = match reply {
                    WorkerReply::Result { id, .. } | WorkerReply::Refusal { id, .. } => id,
                };
                self.condemn(key);
                self.recover(
                    key,
                    task,
                    format!("reply for cell {got} while cell {task} was in flight"),
                )?;
            }
            Err(e) => {
                self.condemn(key);
                self.recover(key, task, format!("malformed reply: {e}"))?;
            }
        }
        Ok(())
    }

    fn on_eof(&mut self, key: u64) -> Result<(), String> {
        let reaped = self.workers.get(&key).is_some_and(|w| w.reaped);
        if reaped || !self.workers.contains_key(&key) {
            // A retired or condemned worker finished dying: cleanup only.
            self.reap(key);
            return Ok(());
        }
        match self.busy.get(&key).copied() {
            Some(task) => {
                let status = self.wait_status(key);
                self.recover(key, task, format!("worker died mid-cell ({status})"))?;
                self.reap(key);
            }
            None => {
                // An idle (or freshly retired) worker exited; make sure the
                // queue keeps draining.
                self.reap(key);
                if !self.queue.is_empty() && self.busy.is_empty() {
                    let key = self.spawn()?;
                    self.dispatch_next(key);
                }
            }
        }
        Ok(())
    }

    /// Requeues `task` after worker `key` failed on it: onto a freshly
    /// spawned replacement when attempts remain (a fresh worker is the one
    /// process guaranteed not to be mid-way through its own failure
    /// budget), into quarantine otherwise.
    fn recover(&mut self, key: u64, task: usize, detail: String) -> Result<(), String> {
        self.busy.remove(&key);
        self.attempts[task] += 1;
        if self.attempts[task] >= self.cfg.max_attempts {
            self.fill(task, Err(CellError { attempts: self.attempts[task], detail }));
            // Keep the pool draining the remaining queue.
            if !self.queue.is_empty() {
                let key = self.spawn()?;
                self.dispatch_next(key);
            }
        } else {
            let replacement = self.spawn()?;
            self.dispatch(replacement, task);
        }
        Ok(())
    }

    fn fill(&mut self, task: usize, outcome: Result<Vec<RunRecord>, CellError>) {
        debug_assert!(self.slots[task].is_none(), "slot {task} filled twice");
        self.slots[task] = Some(outcome);
        self.filled += 1;
    }

    /// Kills and waits a misbehaving worker; its pending `Eof` event then
    /// only triggers cleanup.
    fn condemn(&mut self, key: u64) {
        if let Some(handle) = self.workers.get_mut(&key) {
            handle.stdin = None;
            let _ = handle.child.kill();
            let _ = handle.child.wait();
            handle.reaped = true;
        }
    }

    /// Waits the child (it is known dead — its stdout closed) and renders
    /// its exit status.
    fn wait_status(&mut self, key: u64) -> String {
        let Some(handle) = self.workers.get_mut(&key) else { return "unknown status".into() };
        handle.stdin = None;
        handle.reaped = true;
        match handle.child.wait() {
            Ok(status) => status.to_string(),
            Err(e) => format!("wait failed: {e}"),
        }
    }

    /// Fully removes a worker whose reader reported EOF.
    fn reap(&mut self, key: u64) {
        if let Some(mut handle) = self.workers.remove(&key) {
            handle.stdin = None;
            if !handle.reaped {
                let _ = handle.child.wait();
            }
            if let Some(reader) = handle.reader.take() {
                let _ = reader.join();
            }
        }
    }

    /// Retires every remaining worker after the last slot filled.
    fn shutdown(&mut self) {
        let keys: Vec<u64> = self.workers.keys().copied().collect();
        for key in keys {
            self.reap(key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_clamps_workers() {
        let cfg = DistConfig::new(0, vec!["w".into()]);
        assert_eq!(cfg.workers, 1);
        assert_eq!(cfg.max_attempts, 2);
    }

    #[test]
    fn split_command_honors_quotes() {
        assert_eq!(split_command("ba-bench worker"), ["ba-bench", "worker"]);
        assert_eq!(
            split_command("'/path with space/ba-bench' worker --fail-after 3"),
            ["/path with space/ba-bench", "worker", "--fail-after", "3"]
        );
        assert_eq!(
            split_command("ssh host \"ba-bench worker\""),
            ["ssh", "host", "ba-bench worker"]
        );
        // Adjacent quoted and bare segments join into one token.
        assert_eq!(split_command("a\"b c\"d"), ["ab cd"]);
        assert_eq!(split_command("  "), Vec::<String>::new());
        assert_eq!(split_command("''"), [""]);
    }

    #[test]
    fn empty_grid_produces_empty_reports_without_spawning() {
        // A nonsense command proves no process is spawned for empty grids.
        let cfg = DistConfig::new(3, vec!["/nonexistent/worker".into()]);
        let reports = run_sweeps(&[], &cfg).expect("no work, no workers");
        assert!(reports.is_empty());
    }

    #[test]
    fn unspawnable_worker_is_an_error() {
        use crate::scenario::{ProtocolSpec, Scenario};
        let sweep = Sweep::new("s", 1, vec![Scenario::new("c", 5, ProtocolSpec::QuadraticHalf)]);
        let cfg = DistConfig::new(1, vec!["/nonexistent/worker".into()]);
        let err = sweep.run_distributed(&cfg).expect_err("spawn must fail");
        assert!(err.contains("spawning worker"), "{err}");
    }
}
