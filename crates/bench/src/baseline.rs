//! Baseline regression diffing for `BENCH_*.json` reports.
//!
//! The CI smoke job regenerates every experiment's JSON report on each
//! push; this module compares such a report against a committed baseline
//! (`baselines/smoke/`) **cell by cell**: sweeps are matched by title,
//! cells by scenario label, runs by seed, and observables by name. Any
//! structural difference (missing/extra sweep, cell, run, or metric, or a
//! changed scenario configuration) is a failure; numeric values are
//! compared under a tolerance band `|a − b| ≤ abs_tol + rel_tol ·
//! max(|a|, |b|)`, which defaults to **exact equality** — the simulator is
//! deterministic, so the smoke grid's observables are reproducible to the
//! bit, and any drift means the *semantics* of an experiment changed, not
//! its plumbing. Legitimate changes regenerate the baseline (see
//! EXPERIMENTS.md, "Baselines").
//!
//! The build environment is offline (no serde), so this module carries its
//! own minimal JSON parser: a strict recursive-descent parser over the
//! subset JSON itself defines, returning an order-preserving DOM.

use std::fmt::Write as _;

/// A parsed JSON value. Object members preserve document order (the report
/// writer is deterministic, so order is meaningful and diffable).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null` (the report writer emits it for non-finite observables).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`, the observables' native type).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object (`None` on other variants).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Maximum container-nesting depth the parser accepts. Reports nest a
/// handful of levels; the limit exists so a hostile "`[[[[…`" depth bomb is
/// an `Err`, not a recursion-driven stack overflow (pinned by the parser
/// property tests).
pub const MAX_JSON_DEPTH: usize = 128;

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected, nesting bounded by [`MAX_JSON_DEPTH`]).
pub fn parse_json(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&ch) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", ch as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_JSON_DEPTH {
        return Err(format!("nesting deeper than {MAX_JSON_DEPTH} at byte {}", *pos));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos, depth),
        Some(b'[') => parse_array(bytes, pos, depth),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii number");
    text.parse::<f64>().map(Json::Num).map_err(|_| format!("invalid number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {}", *pos))?;
                        // The report writer never emits surrogate pairs
                        // (only control characters are escaped this way).
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x80 => {
                out.push(b as char);
                *pos += 1;
            }
            Some(_) => {
                // Multi-byte UTF-8: copy the full scalar.
                let s = std::str::from_utf8(&bytes[*pos..]).map_err(|_| "invalid utf-8")?;
                let ch = s.chars().next().expect("non-empty");
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        members.push((key, parse_value(bytes, pos, depth + 1)?));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

/// Tolerance bands for numeric comparison (both default to zero: exact).
#[derive(Clone, Debug, Default)]
pub struct Tolerance {
    /// Absolute slack.
    pub abs: f64,
    /// Relative slack (fraction of the larger magnitude).
    pub rel: f64,
    /// Observable names exempt from comparison entirely. Each entry is a
    /// glob pattern: `*` matches any (possibly empty) run of characters,
    /// so `latency_*` exempts every latency observable at once.
    pub ignore: Vec<String>,
}

impl Tolerance {
    /// Whether `a` and `b` agree within the band.
    fn close(&self, a: f64, b: f64) -> bool {
        if a == b {
            return true; // covers ±0 and exact matches cheaply
        }
        (a - b).abs() <= self.abs + self.rel * a.abs().max(b.abs())
    }

    /// Whether observable `name` matches any ignore pattern.
    fn ignores(&self, name: &str) -> bool {
        self.ignore.iter().any(|pattern| glob_match(pattern, name))
    }
}

/// Minimal glob matching: `*` matches any (possibly empty) substring; every
/// other character matches itself. Linear greedy backtracking — the
/// classic two-pointer algorithm, no recursion.
fn glob_match(pattern: &str, name: &str) -> bool {
    let (p, n) = (pattern.as_bytes(), name.as_bytes());
    let (mut pi, mut ni) = (0usize, 0usize);
    let mut star: Option<(usize, usize)> = None;
    while ni < n.len() {
        if pi < p.len() && p[pi] == b'*' {
            star = Some((pi, ni));
            pi += 1;
        } else if pi < p.len() && p[pi] == n[ni] {
            pi += 1;
            ni += 1;
        } else if let Some((spi, sni)) = star {
            // Retry the star with one more character consumed.
            pi = spi + 1;
            ni = sni + 1;
            star = Some((spi, sni + 1));
        } else {
            return false;
        }
    }
    p[pi..].iter().all(|&c| c == b'*')
}

/// The severity of one diff finding.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DriftKind {
    /// A sweep, cell, run, or metric present on one side only, or a
    /// mismatched scenario configuration — never tolerated.
    Structural,
    /// A numeric observable outside the tolerance band.
    Value,
}

/// One detected difference.
#[derive(Clone, Debug)]
pub struct Drift {
    /// Severity class.
    pub kind: DriftKind,
    /// `sweep/cell/seed/metric`-style path into the report.
    pub path: String,
    /// Human-readable explanation (includes both values).
    pub detail: String,
}

/// The outcome of diffing two reports.
#[derive(Clone, Debug, Default)]
pub struct DiffReport {
    /// Everything that differed, in document order.
    pub drifts: Vec<Drift>,
    /// Observables compared (a progress/sanity figure for the summary).
    pub compared: usize,
}

impl DiffReport {
    /// True when the candidate matches the baseline within tolerance.
    pub fn passed(&self) -> bool {
        self.drifts.is_empty()
    }

    /// Multi-line human-readable rendering of the findings.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.drifts {
            let kind = match d.kind {
                DriftKind::Structural => "STRUCTURAL",
                DriftKind::Value => "VALUE",
            };
            let _ = writeln!(out, "{kind:>10}  {}: {}", d.path, d.detail);
        }
        out
    }

    fn push(&mut self, kind: DriftKind, path: impl Into<String>, detail: impl Into<String>) {
        self.drifts.push(Drift { kind, path: path.into(), detail: detail.into() });
    }
}

/// Diffs a candidate sweep report against a baseline, both given as raw
/// `BENCH_*.json` text. Errors are parse/schema failures (not drift).
pub fn diff_reports(
    baseline: &str,
    candidate: &str,
    tol: &Tolerance,
) -> Result<DiffReport, String> {
    let base = parse_json(baseline).map_err(|e| format!("baseline: {e}"))?;
    let cand = parse_json(candidate).map_err(|e| format!("candidate: {e}"))?;
    let mut report = DiffReport::default();

    for key in ["schema", "experiment"] {
        let (b, c) = (field_str(&base, key)?, field_str(&cand, key)?);
        if b != c {
            report.push(DriftKind::Structural, key, format!("baseline {b:?} vs candidate {c:?}"));
        }
    }

    let base_sweeps = base.get("sweeps").and_then(Json::as_arr).ok_or("baseline: no sweeps")?;
    let cand_sweeps = cand.get("sweeps").and_then(Json::as_arr).ok_or("candidate: no sweeps")?;
    diff_keyed(
        &mut report,
        "",
        "sweep",
        base_sweeps,
        cand_sweeps,
        |s| field_str(s, "title").unwrap_or_default(),
        |report, path, b, c| diff_sweep(report, path, b, c, tol),
    );
    Ok(report)
}

fn field_str(obj: &Json, key: &str) -> Result<String, String> {
    obj.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field {key:?}"))
}

/// Matches two arrays of objects by a key function, reporting one-sided
/// entries as structural drift and recursing into the pairs. Keys must be
/// unique per side — a duplicate is itself structural drift (matching by
/// key would silently compare only the first occurrence).
fn diff_keyed(
    report: &mut DiffReport,
    prefix: &str,
    what: &str,
    base: &[Json],
    cand: &[Json],
    key: impl Fn(&Json) -> String,
    mut inner: impl FnMut(&mut DiffReport, &str, &Json, &Json),
) {
    let path_of = |k: &str| if prefix.is_empty() { k.to_string() } else { format!("{prefix}/{k}") };
    for (side, entries) in [("baseline", base), ("candidate", cand)] {
        for (i, e) in entries.iter().enumerate() {
            let k = key(e);
            if entries[..i].iter().any(|p| key(p) == k) {
                report.push(
                    DriftKind::Structural,
                    path_of(&k),
                    format!("duplicate {what} key in {side}"),
                );
            }
        }
    }
    for b in base {
        let k = key(b);
        match cand.iter().find(|c| key(c) == k) {
            Some(c) => inner(report, &path_of(&k), b, c),
            None => report.push(
                DriftKind::Structural,
                path_of(&k),
                format!("{what} missing from candidate"),
            ),
        }
    }
    for c in cand {
        let k = key(c);
        if !base.iter().any(|b| key(b) == k) {
            report.push(DriftKind::Structural, path_of(&k), format!("{what} not in baseline"));
        }
    }
}

fn diff_sweep(report: &mut DiffReport, path: &str, base: &Json, cand: &Json, tol: &Tolerance) {
    let (Some(base_cells), Some(cand_cells)) =
        (base.get("cells").and_then(Json::as_arr), cand.get("cells").and_then(Json::as_arr))
    else {
        report.push(DriftKind::Structural, path, "sweep without cells");
        return;
    };
    diff_keyed(
        report,
        path,
        "cell",
        base_cells,
        cand_cells,
        |c| {
            c.get("scenario")
                .and_then(|s| s.get("label"))
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string()
        },
        |report, path, b, c| diff_cell(report, path, b, c, tol),
    );
}

fn diff_cell(report: &mut DiffReport, path: &str, base: &Json, cand: &Json, tol: &Tolerance) {
    // The scenario configuration must match exactly — a changed n/f/
    // protocol/adversary makes value comparison meaningless. Ignore globs
    // apply here too, so a deliberate cross-config diff can exempt the one
    // axis it varies (e.g. `--ignore-observable 'cert_*'` exempts both the
    // `cert_bits` observables and the `cert_encoding` scenario key when
    // diffing an aggregate-encoded run against the vector baseline).
    if let (Some(Json::Obj(b)), Some(Json::Obj(c))) = (base.get("scenario"), cand.get("scenario")) {
        for (key, bv) in b {
            if tol.ignores(key) {
                continue;
            }
            let cv = c.iter().find(|(k, _)| k == key).map(|(_, v)| v);
            if cv != Some(bv) {
                report.push(
                    DriftKind::Structural,
                    format!("{path}[{key}]"),
                    format!("scenario config changed: baseline {bv:?} vs candidate {cv:?}"),
                );
            }
        }
        // A candidate-only config key is schema drift too (the baseline
        // predates a new `Scenario::describe` field — regenerate it).
        for (key, _) in c {
            if !tol.ignores(key) && !b.iter().any(|(k, _)| k == key) {
                report.push(
                    DriftKind::Structural,
                    format!("{path}[{key}]"),
                    "scenario config key not in baseline",
                );
            }
        }
    }
    // A quarantine record on either side is structural: a distributed run
    // that failed to complete a cell must never silently pass a diff.
    match (base.get("error").is_some(), cand.get("error").is_some()) {
        (false, true) => report.push(DriftKind::Structural, path, "cell quarantined in candidate"),
        (true, false) => report.push(DriftKind::Structural, path, "cell quarantined in baseline"),
        _ => {}
    }
    let (Some(base_runs), Some(cand_runs)) =
        (base.get("runs").and_then(Json::as_arr), cand.get("runs").and_then(Json::as_arr))
    else {
        report.push(DriftKind::Structural, path, "cell without runs");
        return;
    };
    diff_keyed(
        report,
        path,
        "run",
        base_runs,
        cand_runs,
        |r| format!("seed={}", r.get("seed").and_then(Json::as_num).unwrap_or(-1.0)),
        |report, path, b, c| diff_run(report, path, b, c, tol),
    );
}

fn diff_run(report: &mut DiffReport, path: &str, base: &Json, cand: &Json, tol: &Tolerance) {
    let (Some(Json::Obj(b)), Some(Json::Obj(c))) = (base.get("values"), cand.get("values")) else {
        report.push(DriftKind::Structural, path, "run without values");
        return;
    };
    for (name, bv) in b {
        if tol.ignores(name) {
            continue;
        }
        let mpath = format!("{path}/{name}");
        let Some(cv) = c.iter().find(|(k, _)| k == name).map(|(_, v)| v) else {
            report.push(DriftKind::Structural, mpath, "metric missing from candidate");
            continue;
        };
        diff_value(report, &mpath, bv, cv, tol);
    }
    for (name, _) in c {
        if !tol.ignores(name) && !b.iter().any(|(k, _)| k == name) {
            report.push(DriftKind::Structural, format!("{path}/{name}"), "metric not in baseline");
        }
    }
}

fn diff_value(report: &mut DiffReport, path: &str, base: &Json, cand: &Json, tol: &Tolerance) {
    match (base, cand) {
        // The writer encodes non-finite observables as null; two nulls
        // agree (a null vs a number falls through to shape mismatch).
        (Json::Null, Json::Null) => report.compared += 1,
        (Json::Num(b), Json::Num(c)) => {
            report.compared += 1;
            if !tol.close(*b, *c) {
                report.push(
                    DriftKind::Value,
                    path,
                    format!("baseline {b} vs candidate {c} (|Δ| = {})", (b - c).abs()),
                );
            }
        }
        (Json::Arr(b), Json::Arr(c)) => {
            if b.len() != c.len() {
                report.push(
                    DriftKind::Structural,
                    path,
                    format!("sample count {} vs {}", b.len(), c.len()),
                );
                return;
            }
            for (i, (bv, cv)) in b.iter().zip(c).enumerate() {
                diff_value(report, &format!("{path}[{i}]"), bv, cv, tol);
            }
        }
        _ => report.push(
            DriftKind::Structural,
            path,
            format!("shape mismatch: baseline {base:?} vs candidate {cand:?}"),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_round_trips_report_shapes() {
        let doc = r#"{"schema": "s", "n": 3, "x": -1.5, "arr": [1, 2.5, null, true],
                      "nested": {"a": "b\nc", "empty": [], "eobj": {}}}"#;
        let v = parse_json(doc).expect("parses");
        assert_eq!(v.get("schema").and_then(Json::as_str), Some("s"));
        assert_eq!(v.get("n").and_then(Json::as_num), Some(3.0));
        assert_eq!(v.get("x").and_then(Json::as_num), Some(-1.5));
        let arr = v.get("arr").and_then(Json::as_arr).unwrap();
        assert_eq!(arr.len(), 4);
        assert_eq!(arr[2], Json::Null);
        assert_eq!(arr[3], Json::Bool(true));
        assert_eq!(v.get("nested").unwrap().get("a").and_then(Json::as_str), Some("b\nc"));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("{} trailing").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("\"unterminated").is_err());
    }

    #[test]
    fn glob_patterns() {
        assert!(glob_match("latency_*", "latency_commit_p50_ms"));
        assert!(glob_match("peak_*", "peak_live_nodes"));
        assert!(glob_match("*", "anything"));
        assert!(glob_match("*", ""));
        assert!(glob_match("rounds", "rounds"));
        assert!(glob_match("*_p50_*", "latency_commit_p50_ms"));
        assert!(glob_match("a*c", "abc"));
        assert!(glob_match("a*c", "ac"));
        assert!(!glob_match("latency_*", "rounds"));
        assert!(!glob_match("peak", "peak_live_nodes"));
        assert!(!glob_match("a*c", "acb"));
        let tol = Tolerance { ignore: vec!["latency_*".into()], ..Tolerance::default() };
        assert!(tol.ignores("latency_delivered"));
        assert!(!tol.ignores("multicasts"));
    }

    #[test]
    fn tolerance_bands() {
        let exact = Tolerance::default();
        assert!(exact.close(1.0, 1.0));
        assert!(!exact.close(1.0, 1.0000001));
        let band = Tolerance { abs: 0.5, rel: 0.0, ignore: Vec::new() };
        assert!(band.close(10.0, 10.4));
        assert!(!band.close(10.0, 10.6));
        let rel = Tolerance { abs: 0.0, rel: 0.1, ignore: Vec::new() };
        assert!(rel.close(100.0, 109.0));
        assert!(!rel.close(100.0, 112.0));
    }
}
