//! Baseline-diff regression tests: the `ba-bench diff` engine must pass on
//! byte-identical reports and flag injected drift — the property the CI
//! baseline job depends on.

use ba_bench::baseline::{diff_reports, parse_json, DriftKind, Tolerance};
use ba_bench::{to_json, ProtocolSpec, Scenario, Sweep};

/// A small deterministic report (one protocol cell, two seeds).
fn sample_report() -> String {
    let sweep =
        Sweep::new("diff_fixture", 2, vec![Scenario::new("quad", 9, ProtocolSpec::QuadraticHalf)]);
    to_json("diff_fixture", &[sweep.run(2)])
}

#[test]
fn identical_reports_pass() {
    let doc = sample_report();
    let report = diff_reports(&doc, &doc, &Tolerance::default()).expect("parses");
    assert!(report.passed(), "{}", report.render());
    assert!(report.compared > 0, "the diff actually compared observables");
}

#[test]
fn injected_value_drift_is_flagged() {
    let base = sample_report();
    // Perturb the first multicasts observable by one.
    let needle = "\"multicasts\": ";
    let at = base.find(needle).expect("metric present") + needle.len();
    let end = at + base[at..].find(|c: char| !c.is_ascii_digit()).unwrap();
    let old: u64 = base[at..end].parse().unwrap();
    let drifted = format!("{}{}{}", &base[..at], old + 1, &base[end..]);

    let report = diff_reports(&base, &drifted, &Tolerance::default()).expect("parses");
    assert!(!report.passed(), "injected drift must be flagged");
    assert_eq!(report.drifts.len(), 1);
    assert_eq!(report.drifts[0].kind, DriftKind::Value);
    assert!(report.drifts[0].path.ends_with("seed=0/multicasts"), "{}", report.drifts[0].path);

    // A wide-enough absolute tolerance band accepts the same drift.
    let tol = Tolerance { abs: 1.5, rel: 0.0, ignore: Vec::new() };
    assert!(diff_reports(&base, &drifted, &tol).unwrap().passed());
    // An ignore-list exemption accepts it too.
    let tol = Tolerance { abs: 0.0, rel: 0.0, ignore: vec!["multicasts".into()] };
    assert!(diff_reports(&base, &drifted, &tol).unwrap().passed());
}

#[test]
fn missing_metric_is_structural() {
    let base = sample_report();
    // Drop the rounds metric from every run (name change = schema change).
    let cand = base.replace("\"rounds\":", "\"rounds_renamed\":");
    let report = diff_reports(&base, &cand, &Tolerance::default()).expect("parses");
    assert!(!report.passed());
    assert!(report.drifts.iter().any(|d| d.kind == DriftKind::Structural
        && d.path.ends_with("/rounds")
        && d.detail.contains("missing")));
    assert!(report
        .drifts
        .iter()
        .any(|d| d.kind == DriftKind::Structural && d.path.ends_with("/rounds_renamed")));
}

#[test]
fn missing_cell_and_changed_config_are_structural() {
    let base = sample_report();
    // A relabelled cell looks like one missing + one extra.
    let cand = base.replace("\"label\": \"quad\"", "\"label\": \"quad2\"");
    let report = diff_reports(&base, &cand, &Tolerance::default()).expect("parses");
    assert!(report.drifts.iter().all(|d| d.kind == DriftKind::Structural));
    assert!(report.drifts.len() >= 2, "{}", report.render());

    // A changed scenario configuration is structural even when labels match.
    let cand = base.replace("\"n\": 9", "\"n\": 10");
    let report = diff_reports(&base, &cand, &Tolerance::default()).expect("parses");
    assert!(report
        .drifts
        .iter()
        .any(|d| d.kind == DriftKind::Structural && d.detail.contains("scenario config")));
}

#[test]
fn candidate_only_scenario_key_is_structural() {
    // A new `Scenario::describe` field appearing only in the candidate is
    // schema drift: the baseline must be regenerated, not silently passed.
    let base = sample_report();
    let cand = base
        .replace("\"elig_seed\": \"per_run\"", "\"elig_seed\": \"per_run\", \"new_knob\": \"on\"");
    let report = diff_reports(&base, &cand, &Tolerance::default()).expect("parses");
    assert!(report
        .drifts
        .iter()
        .any(|d| d.kind == DriftKind::Structural && d.path.ends_with("[new_knob]")));
}

#[test]
fn duplicate_keys_are_structural() {
    // A report with two same-label cells would otherwise have its second
    // cell silently skipped by key matching.
    let base = sample_report();
    let cells_start = base.find("\"cells\": [\n").expect("cells array");
    let cell_open = base[cells_start..].find("        {\n").unwrap() + cells_start;
    let cell_close =
        base[cell_open..].find("\n        }").unwrap() + cell_open + "\n        }".len();
    let cell = &base[cell_open..cell_close];
    let dup = format!("{}{cell},\n{cell}{}", &base[..cell_open], &base[cell_close..]);
    parse_json(&dup).expect("fixture stays valid JSON");
    let report = diff_reports(&base, &dup, &Tolerance::default()).expect("parses");
    assert!(report
        .drifts
        .iter()
        .any(|d| d.kind == DriftKind::Structural && d.detail.contains("duplicate cell key")));
}

#[test]
fn matching_nulls_agree() {
    // The report writer encodes non-finite observables as null; two nulls
    // must compare equal, while null vs number is a shape mismatch.
    let doc = |v: &str| {
        format!(
            "{{\"schema\": \"s\", \"experiment\": \"e\", \"sweeps\": [{{\"title\": \"t\", \
             \"cells\": [{{\"scenario\": {{\"label\": \"c\"}}, \"runs\": \
             [{{\"seed\": 0, \"values\": {{\"ratio\": {v}}}}}]}}]}}]}}"
        )
    };
    let report = diff_reports(&doc("null"), &doc("null"), &Tolerance::default()).expect("parses");
    assert!(report.passed(), "{}", report.render());
    let report = diff_reports(&doc("null"), &doc("1"), &Tolerance::default()).expect("parses");
    assert!(
        report.drifts.iter().any(|d| d.kind == DriftKind::Structural),
        "null vs number must be structural"
    );
}

#[test]
fn tolerance_is_not_a_loophole_for_structure() {
    // Even an infinite tolerance band never excuses structural drift.
    let base = sample_report();
    let cand = base.replace("\"rounds\":", "\"rounds_renamed\":");
    let tol = Tolerance { abs: f64::INFINITY, rel: f64::INFINITY, ignore: Vec::new() };
    assert!(!diff_reports(&base, &cand, &tol).unwrap().passed());
}
