//! Certificate-encoding differential suite — the PR's headline
//! deliverable: the vector and aggregate certificate encodings are
//! **decision-identical**.
//!
//! * The whole smoke gauntlet matrix (family × adversary × corruption
//!   model × fraction) runs under both encodings; the reports must agree
//!   on every protocol observable modulo the axes that legitimately move —
//!   `cert_*` (the encoding itself plus the forger's probe counters),
//!   `*bits` (message sizes change by construction), and `peak_*` (the
//!   resident-message gauge tracks message identity, not protocol state).
//! * A proptest sweeps random mined-family scenarios: `F_mine` tickets
//!   cannot be aggregated, so the aggregate-encoded run must be
//!   **byte-identical** (bits included) to the vector run.
//! * Pinned-seed goldens for one aggregate e2-style cell, one e14 cell,
//!   and the cert forger's aggregate-forgery counters: every forged
//!   certificate shape is attempted and every one is blocked.

use ba_bench::gauntlet::gauntlet_sweeps;
use ba_bench::{
    diff_reports, to_json, Grid, ProtocolSpec, Scenario, Sweep, SweepReport, Tolerance,
};
use ba_core::cert::CertEncoding;
use proptest::prelude::*;

/// Runs the full smoke gauntlet with every scenario forced to `encoding`.
fn gauntlet_reports(encoding: CertEncoding) -> Vec<SweepReport> {
    let mut sweeps = gauntlet_sweeps(Grid::Smoke, 2);
    for sweep in &mut sweeps {
        for scenario in &mut sweep.scenarios {
            scenario.cert_encoding = encoding;
        }
    }
    sweeps.iter().map(|s| s.run(4)).collect()
}

#[test]
fn gauntlet_decision_identical_across_encodings() {
    let vector = to_json("e11_gauntlet", &gauntlet_reports(CertEncoding::Vector));
    let aggregate = to_json("e11_gauntlet", &gauntlet_reports(CertEncoding::Aggregate));
    // `cert_*` exempts the encoding key and the forger's probe counters,
    // `*bits` the message sizes, `peak_*` the resident-message gauge.
    // Everything else — rounds, send counts, verdicts, decisions,
    // corruptions, drops — must match seed for seed across the whole
    // matrix.
    let tol = Tolerance {
        ignore: vec!["cert_*".into(), "*bits".into(), "peak_*".into()],
        ..Tolerance::default()
    };
    let diff = diff_reports(&vector, &aggregate, &tol).expect("both reports parse");
    assert!(diff.passed(), "aggregate encoding changed protocol decisions:\n{}", diff.render());
    // And the comparison is not vacuous: the encodings genuinely differ.
    assert_ne!(vector, aggregate, "aggregate run was byte-identical — encoding not applied?");
}

/// The signed quadratic family under aggregate encoding: an e2-style cell
/// (multicast complexity) pinned per seed. Regenerate by printing
/// `samples` on the cell if the protocol or encoding changes semantics.
#[test]
fn golden_aggregate_e2_cell() {
    let sweep = Sweep::new(
        "e2/quadratic_half",
        2,
        vec![Scenario::new("n=16", 16, ProtocolSpec::QuadraticHalf)
            .cert_encoding(CertEncoding::Aggregate)],
    );
    let report = sweep.run(1);
    let cell = report.cell("n=16");
    assert_eq!(cell.samples("rounds"), GOLDEN_E2_ROUNDS);
    assert_eq!(cell.samples("multicasts"), GOLDEN_E2_MULTICASTS);
    assert_eq!(cell.samples("cert_bits"), GOLDEN_E2_CERT_BITS);
    assert_eq!(cell.samples("multicast_bits"), GOLDEN_E2_MULTICAST_BITS);
    assert_eq!(cell.samples("all_ok"), [1.0, 1.0]);
    // The same cell under vector encoding: identical decisions, larger
    // certificates.
    let vector = Sweep::new(
        "e2/quadratic_half",
        2,
        vec![Scenario::new("n=16", 16, ProtocolSpec::QuadraticHalf)],
    )
    .run(1);
    let vcell = vector.cell("n=16");
    assert_eq!(vcell.samples("rounds"), GOLDEN_E2_ROUNDS);
    assert_eq!(vcell.samples("multicasts"), GOLDEN_E2_MULTICASTS);
    assert_eq!(vcell.samples("cert_bits"), GOLDEN_E2_VECTOR_CERT_BITS);
}

const GOLDEN_E2_ROUNDS: [f64; 2] = [7.0, 7.0];
const GOLDEN_E2_MULTICASTS: [f64; 2] = [81.0, 81.0];
const GOLDEN_E2_CERT_BITS: [f64; 2] = [18048.0, 18048.0];
const GOLDEN_E2_MULTICAST_BITS: [f64; 2] = [74218.0, 74218.0];
const GOLDEN_E2_VECTOR_CERT_BITS: [f64; 2] = [157824.0, 157824.0];

/// One e14 smoke cell (subq_half n=64 under aggregate encoding): the mined
/// regime cannot aggregate, so its certificate bits must equal the vector
/// run's exactly — pinned per seed.
#[test]
fn golden_e14_mined_fallback_cell() {
    let agg = Sweep::new(
        "e14/subq_half",
        2,
        vec![Scenario::new("n=64", 64, ProtocolSpec::SubqHalf { lambda: 24.0, max_iters: None })
            .cert_encoding(CertEncoding::Aggregate)],
    )
    .run(1);
    let cell = agg.cell("n=64");
    assert_eq!(cell.samples("rounds"), GOLDEN_E14_ROUNDS);
    assert_eq!(cell.samples("cert_bits"), GOLDEN_E14_CERT_BITS);
    assert_eq!(cell.samples("all_ok"), [1.0, 1.0]);
    let vector = Sweep::new(
        "e14/subq_half",
        2,
        vec![Scenario::new("n=64", 64, ProtocolSpec::SubqHalf { lambda: 24.0, max_iters: None })],
    )
    .run(1);
    assert_eq!(vector.cell("n=64").samples("cert_bits"), GOLDEN_E14_CERT_BITS);
}

const GOLDEN_E14_ROUNDS: [f64; 2] = [15.0, 27.0];
const GOLDEN_E14_CERT_BITS: [f64; 2] = [1438704.0, 609912.0];

/// The cert forger's aggregate-forgery probes, pinned per seed: under the
/// signed regime every forged certificate shape (inflated bitmap,
/// duplicate signer, swapped statement) is attempted and every one is
/// blocked; under the mined regime there is nothing to aggregate and no
/// probe fires.
#[test]
fn golden_forger_probes_all_blocked() {
    let reports = gauntlet_reports(CertEncoding::Aggregate);
    let cell = |sweep: &str, label: &str, metric: &str| -> Vec<f64> {
        reports
            .iter()
            .find(|r| r.title == sweep)
            .unwrap_or_else(|| panic!("no sweep {sweep:?}"))
            .cell(label)
            .samples(metric)
    };
    // Signed regime (quadratic_half, smoke n=9, f_max=4): three probe
    // shapes per run, all rejected.
    let attempts = cell("iter/quadratic_half", "cert_forger@static/f=4", "cert_forge_attempts");
    let blocked = cell("iter/quadratic_half", "cert_forger@static/f=4", "cert_forge_blocked");
    assert_eq!(attempts, [3.0, 3.0]);
    assert_eq!(blocked, attempts, "an aggregate forgery was accepted");
    // Mined regime: no signing keys behind the tickets, no probes.
    let attempts = cell("iter/subq_half", "cert_forger@static/f=19", "cert_forge_attempts");
    assert_eq!(attempts, [0.0, 0.0]);
}

/// Strategy for a random mined-family scenario: sizes, committee
/// parameter, adversary, and corruption model drawn at random.
fn arb_mined_scenario() -> impl Strategy<Value = Scenario> {
    (16usize..64, 8u64..16, 0usize..4, any::<bool>()).prop_map(|(n, lam, adv, strongly)| {
        use ba_bench::AdversarySpec as A;
        use ba_sim::CorruptionModel as M;
        let f = n / 3;
        let (adversary, model, f) = match adv {
            0 => (A::Passive, M::Static, 0),
            1 => (A::CrashTail { at_round: 1 }, M::Static, f),
            2 => (A::AdaptiveEclipse { per_round: 0 }, M::Adaptive, f),
            _ => (A::StarveQuorum, if strongly { M::StronglyAdaptive } else { M::Adaptive }, f),
        };
        Scenario::new(
            format!("n={n}/lam={lam}/adv={adv}"),
            n,
            ProtocolSpec::SubqHalf { lambda: lam as f64, max_iters: Some(6) },
        )
        .f(f)
        .model(model)
        .adversary(adversary)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Mined regimes have no signing keys, so requesting aggregate
    /// certificates must change nothing at all: the two reports render to
    /// byte-identical JSON (bits, gauges and every observable included).
    #[test]
    fn mined_family_aggregate_request_is_byte_identical(scenario in arb_mined_scenario()) {
        let vector = Sweep::new("prop", 2, vec![scenario.clone()]).run(1);
        let aggregate = Sweep::new(
            "prop",
            2,
            vec![scenario.cert_encoding(CertEncoding::Aggregate)],
        )
        .run(1);
        let vjson = to_json("prop", &[vector]);
        let ajson = to_json("prop", &[aggregate]);
        // The scenario descriptor records the requested encoding (that is
        // the one legitimate difference); the runs themselves must match
        // byte for byte.
        prop_assert_eq!(
            vjson.replace("\"cert_encoding\": \"vector\"", ""),
            ajson.replace("\"cert_encoding\": \"aggregate\"", "")
        );
    }
}
