//! Sparse-population regression tests at the bench layer.
//!
//! The contract under test: [`ba_sim::PopulationMode::Sparse`] is a pure
//! resource knob. Sparse-capable cells (mined iteration/epoch families)
//! produce **identical** protocol observables to the dense engine at every
//! sim-thread count — the only licensed difference is the substrate gauges
//! (`peak_live_nodes`/`peak_resident_msgs`), which measure the engine
//! itself and differ between engines by design (CI diffs them away with
//! `--ignore-observable 'peak_*'`). Non-capable cells silently fall back
//! to dense and match on *every* observable, gauges included. On top of
//! the identity, the peak-live gauge must scale with the committee, not
//! the population.
//!
//! Layers:
//!
//! * the full e11 smoke gauntlet under `--population sparse`, compared
//!   to the dense run modulo `peak_*` AND byte-compared to the committed
//!   CI baseline (`baselines/smoke/BENCH_e11_gauntlet.json`);
//! * an explicit family × adversary matrix with named adversary-attribution
//!   observables (`dropped_sends`, `corrupt_bits`, ...) — lazily
//!   instantiated nodes must attribute exactly like dense ones;
//! * a property test over random small scenarios;
//! * pinned goldens for two sparse cells;
//! * the memory ceiling: `peak_live_nodes` ≪ n on a population-scale cell.

use ba_bench::gauntlet::gauntlet_sweeps;
use ba_bench::{
    diff_reports, to_json, AdversarySpec, Grid, InputPattern, ProtocolSpec, RunRecord, Scenario,
    Sweep, SweepReport, Tolerance,
};
use ba_sim::{CorruptionModel, PopulationMode};
use proptest::prelude::*;

/// The CI tolerance for cross-engine comparison: exact on every protocol
/// observable, ignoring only the engine-substrate gauges.
fn modulo_gauges() -> Tolerance {
    Tolerance { ignore: vec!["peak_*".into()], ..Tolerance::default() }
}

/// Strips the substrate gauges from records for direct record equality.
fn without_gauges(runs: &[RunRecord]) -> Vec<RunRecord> {
    runs.iter()
        .map(|r| RunRecord {
            seed: r.seed,
            values: r
                .values
                .iter()
                .filter(|(name, _)| !name.starts_with("peak_"))
                .cloned()
                .collect(),
        })
        .collect()
}

/// Runs the whole smoke gauntlet under the given engine/thread combination.
fn gauntlet_reports(population: PopulationMode, sim_threads: usize) -> Vec<SweepReport> {
    let mut sweeps = gauntlet_sweeps(Grid::Smoke, 2);
    for sweep in &mut sweeps {
        for scenario in &mut sweep.scenarios {
            scenario.population = population;
            scenario.sim_threads = sim_threads;
        }
    }
    sweeps.iter().map(|s| s.run(2)).collect()
}

/// The satellite acceptance check: the full e11 smoke gauntlet — every
/// family, every adversary, every corruption model — rendered under the
/// sparse engine matches the dense render on every protocol observable
/// (the CI comparison: exact modulo `peak_*` gauges), and the dense render
/// is byte-identical to the committed CI baseline.
#[test]
fn sparse_gauntlet_byte_identical_to_dense_and_committed_baseline() {
    let dense = to_json("e11_gauntlet", &gauntlet_reports(PopulationMode::Dense, 1));
    for sim_threads in [1usize, 4] {
        let sparse =
            to_json("e11_gauntlet", &gauntlet_reports(PopulationMode::Sparse, sim_threads));
        let diff = diff_reports(&dense, &sparse, &modulo_gauges()).expect("both parse");
        assert!(
            diff.passed(),
            "sparse gauntlet (sim_threads={sim_threads}) diverged from dense:\n{}",
            diff.render()
        );
    }
    let baseline_path =
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../baselines/smoke/BENCH_e11_gauntlet.json");
    let committed = std::fs::read_to_string(baseline_path).expect("committed e11 baseline");
    assert_eq!(
        dense, committed,
        "generated smoke gauntlet no longer matches the committed baseline"
    );
}

fn records(
    sc: &Scenario,
    seeds: u64,
    population: PopulationMode,
    sim_threads: usize,
) -> Vec<RunRecord> {
    let mut sc = sc.clone().population(population);
    sc.sim_threads = sim_threads;
    let report = Sweep::new("population", seeds, vec![sc]).run(1);
    report.cells[0].runs.clone()
}

/// The explicit family × adversary matrix. Full-record equality covers
/// every observable, but the adversary-attribution ones are re-asserted by
/// name: a lazily materialized node that drops a unicast or receives
/// corrupt traffic must meter exactly like its dense twin (the
/// `dropped_sends`/`corrupt_bits` satellite).
#[test]
fn sparse_matches_dense_across_families_adversaries_and_threads() {
    use AdversarySpec as A;
    use CorruptionModel as M;
    let subq_half = ProtocolSpec::SubqHalf { lambda: 12.0, max_iters: Some(6) };
    let subq_third = ProtocolSpec::SubqThird { lambda: 10.0, epochs: 6 };
    let subq_shared = ProtocolSpec::SubqShared { lambda: 10.0, epochs: 6 };
    let cells: Vec<(&str, Scenario)> = vec![
        // Iteration family (mined): sparse-capable.
        ("iter/passive", Scenario::new("c", 40, subq_half.clone())),
        (
            "iter/crash_tail",
            Scenario::new("c", 40, subq_half.clone()).adversary(A::CrashTail { at_round: 1 }).f(13),
        ),
        (
            "iter/silence_burst",
            Scenario::new("c", 40, subq_half.clone())
                .adversary(A::SilenceThenBurst { at_round: 3 })
                .f(13),
        ),
        (
            "iter/adaptive_eclipse",
            Scenario::new("c", 40, subq_half.clone())
                .adversary(A::AdaptiveEclipse { per_round: 0 })
                .model(M::Adaptive)
                .f(13),
        ),
        (
            "iter/eclipse_burst",
            Scenario::new("c", 40, subq_half.clone())
                .adversary(A::EclipseBurst { at_round: 3 })
                .model(M::Adaptive)
                .f(13),
        ),
        (
            "iter/starve_quorum",
            Scenario::new("c", 40, subq_half.clone())
                .adversary(A::StarveQuorum)
                .model(M::StronglyAdaptive)
                .f(13),
        ),
        (
            "iter/cert_forger",
            Scenario::new("c", 40, subq_half.clone())
                .adversary(A::CertForger { target: true })
                .f(13),
        ),
        // Real-VRF eligibility through the untabled-threshold boundary.
        ("iter/passive_real", Scenario::new("c", 36, subq_half).real_elig()),
        // Epoch family (mined): sparse-capable, including typed adversaries.
        ("epoch/passive", Scenario::new("c", 33, subq_third.clone())),
        (
            "epoch/vote_flipper",
            Scenario::new("c", 33, subq_third.clone())
                .adversary(A::VoteFlipper)
                .model(M::Adaptive)
                .f(9),
        ),
        (
            "epoch/equivocation_spammer",
            Scenario::new("c", 33, subq_third.clone()).adversary(A::EquivocationSpammer).f(9),
        ),
        (
            "epoch/crash_tail",
            Scenario::new("c", 33, subq_third).adversary(A::CrashTail { at_round: 1 }).f(9),
        ),
        ("epoch/shared_committee", Scenario::new("c", 30, subq_shared)),
        // Non-capable regimes: sparse must silently fall back to dense.
        ("iter/signed_fallback", Scenario::new("c", 9, ProtocolSpec::QuadraticHalf)),
        (
            "epoch/round_robin_fallback",
            Scenario::new("c", 12, ProtocolSpec::WarmupThird { epochs: 6 }),
        ),
        (
            "epoch/fs_mined_fallback",
            Scenario::new(
                "c",
                24,
                ProtocolSpec::ChenMicali { lambda: 10.0, epochs: 5, erasure: true },
            ),
        ),
    ];
    for (name, sc) in &cells {
        let dense = records(sc, 2, PopulationMode::Dense, 1);
        for sim_threads in [1usize, 4] {
            let sparse = records(sc, 2, PopulationMode::Sparse, sim_threads);
            assert_eq!(
                without_gauges(&sparse),
                without_gauges(&dense),
                "{name}: sparse records (sim_threads={sim_threads}) diverged from dense"
            );
        }
        // Named attribution re-assertion (satellite: lazy instantiation
        // must not shift blame between honest and adversary ledgers).
        let sparse = records(sc, 2, PopulationMode::Sparse, 1);
        for metric in ["dropped_sends", "corrupt_bits", "corrupt_sends", "injected_sends"] {
            let pick = |runs: &[RunRecord]| -> Vec<f64> {
                runs.iter()
                    .flat_map(|r| r.values.iter().filter(|(n, _)| n == metric).map(|(_, v)| *v))
                    .collect()
            };
            assert_eq!(pick(&sparse), pick(&dense), "{name}: {metric} attribution diverged");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random small mined-family scenarios: sparse ≡ dense, every time.
    #[test]
    fn sparse_matches_dense_on_random_scenarios(
        n in 24usize..56,
        lambda in 6u32..16,
        family in 0u8..3,
        adversary in 0u8..4,
        seed_offset in 0u64..1000,
        unanimous in any::<Option<bool>>(),
    ) {
        let protocol = match family {
            0 => ProtocolSpec::SubqHalf { lambda: lambda as f64, max_iters: Some(5) },
            1 => ProtocolSpec::SubqThird { lambda: lambda as f64, epochs: 5 },
            _ => ProtocolSpec::SubqShared { lambda: lambda as f64, epochs: 5 },
        };
        let f = n / 4;
        let (adv, model) = match adversary {
            0 => (AdversarySpec::Passive, CorruptionModel::Static),
            1 => (AdversarySpec::CrashTail { at_round: 1 }, CorruptionModel::Static),
            2 => (AdversarySpec::AdaptiveEclipse { per_round: 1 }, CorruptionModel::Adaptive),
            _ => (AdversarySpec::SilenceThenBurst { at_round: 2 }, CorruptionModel::Static),
        };
        let inputs = match unanimous {
            Some(b) => InputPattern::Unanimous(b),
            None => InputPattern::Alternating,
        };
        let sc = Scenario::new("prop", n, protocol)
            .inputs(inputs)
            .adversary(adv)
            .model(model)
            .f(f)
            .seed_offset(seed_offset);
        let dense = records(&sc, 1, PopulationMode::Dense, 1);
        let sparse = records(&sc, 1, PopulationMode::Sparse, 1);
        prop_assert_eq!(without_gauges(&sparse), without_gauges(&dense));
    }
}

// Pinned goldens (seeds 0 and 1) for two adversarial sparse cells. The
// matrix tests above prove sparse ≡ dense on these shapes, so the constants
// pin the *shared* trajectory: a drift in either engine trips them.

#[test]
fn golden_sparse_iter_cell() {
    let sc =
        Scenario::new("golden", 48, ProtocolSpec::SubqHalf { lambda: 16.0, max_iters: Some(6) })
            .adversary(AdversarySpec::SilenceThenBurst { at_round: 3 })
            .f(19)
            .population(PopulationMode::Sparse);
    let report = Sweep::new("golden", 2, vec![sc]).run(1);
    let cell = &report.cells[0];
    assert_eq!(cell.samples("rounds"), GOLDEN_ITER_ROUNDS);
    assert_eq!(cell.samples("multicasts"), GOLDEN_ITER_MULTICASTS);
    assert_eq!(cell.samples("injected_sends"), GOLDEN_ITER_INJECTED);
    assert_eq!(cell.samples("corrupt_bits"), GOLDEN_ITER_CORRUPT_BITS);
}

#[test]
fn golden_sparse_epoch_cell() {
    let sc = Scenario::new("golden", 36, ProtocolSpec::SubqThird { lambda: 16.0, epochs: 6 })
        .adversary(AdversarySpec::EquivocationSpammer)
        .f(10)
        .population(PopulationMode::Sparse);
    let report = Sweep::new("golden", 2, vec![sc]).run(1);
    let cell = &report.cells[0];
    assert_eq!(cell.samples("rounds"), GOLDEN_EPOCH_ROUNDS);
    assert_eq!(cell.samples("multicasts"), GOLDEN_EPOCH_MULTICASTS);
    assert_eq!(cell.samples("corrupt_sends"), GOLDEN_EPOCH_CORRUPT_SENDS);
    assert_eq!(cell.samples("consistent"), [1.0, 1.0]);
}

const GOLDEN_ITER_ROUNDS: [f64; 2] = [15.0, 26.0];
const GOLDEN_ITER_MULTICASTS: [f64; 2] = [64.0, 49.0];
const GOLDEN_ITER_INJECTED: [f64; 2] = [11.0, 13.0];
const GOLDEN_ITER_CORRUPT_BITS: [f64; 2] = [257_556.0, 255_822.0];
const GOLDEN_EPOCH_ROUNDS: [f64; 2] = [13.0, 13.0];
const GOLDEN_EPOCH_MULTICASTS: [f64; 2] = [74.0, 68.0];
const GOLDEN_EPOCH_CORRUPT_SENDS: [f64; 2] = [638.0, 714.0];

/// The memory model, at a size every test run can afford: a 20 000-node
/// sparse cell materializes only the committee union — `peak_live_nodes`
/// bounded by 64 · λ · log₂ n and far below n.
#[test]
fn sparse_peak_live_scales_with_committee_not_population() {
    let n = 20_000;
    let lambda = 16.0;
    let sc = Scenario::new("big", n, ProtocolSpec::SubqHalf { lambda, max_iters: None })
        .inputs(InputPattern::Unanimous(true))
        .population(PopulationMode::Sparse);
    let run = sc.execute(7);
    let m = &run.report.expect("protocol cell").metrics;
    let ceiling = (64.0 * lambda * (n as f64).log2()).ceil() as u64;
    assert!(m.peak_live_nodes <= ceiling, "peak {} > ceiling {ceiling}", m.peak_live_nodes);
    assert!(
        (m.peak_live_nodes as usize) * 10 < n,
        "peak {} is not o(n) at n={n}",
        m.peak_live_nodes
    );
    assert!(run.verdict.expect("verdict").all_ok());
}

/// The issue's acceptance cell: n = 100 000 on the **real** VRF/DLEQ
/// eligibility backend completes under the sparse engine with the committee
/// ceiling intact. Debug-mode bigint arithmetic makes this minutes-slow, so
/// the test runs in release CI (`cargo test --release -- --ignored`).
#[test]
#[cfg_attr(debug_assertions, ignore = "release-only: debug bigint too slow at n=100k")]
fn sparse_real_eligibility_100k_within_committee_ceiling() {
    let n = 100_000;
    let lambda = 24.0;
    let sc = Scenario::new("e12", n, ProtocolSpec::SubqHalf { lambda, max_iters: None })
        .inputs(InputPattern::Unanimous(true))
        .real_elig()
        .population(PopulationMode::Sparse);
    let run = sc.execute(0);
    let m = &run.report.expect("protocol cell").metrics;
    let ceiling = (64.0 * lambda * (n as f64).log2()).ceil() as u64;
    assert!(m.peak_live_nodes <= ceiling, "peak {} > ceiling {ceiling}", m.peak_live_nodes);
    assert!((m.peak_live_nodes as usize) * 100 < n);
    assert!(run.verdict.expect("verdict").all_ok());
}
