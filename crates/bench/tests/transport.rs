//! Transport-seam regression tests at the bench layer.
//!
//! The sans-I/O contract under test: the protocol state machines never see
//! the transport — [`ba_sim::TransportSpec`] decides *when* each message
//! is delivered, and nothing else. Three consequences, each pinned here:
//!
//! * **Collapse** — the latency transport with zero per-link delay and
//!   GST = 0 delivers every message in exactly the synchronous slot, so it
//!   reproduces the lockstep engine observable-for-observable (only the
//!   `latency_*` substrate observables, which lockstep does not emit, may
//!   differ). Proven on an explicit family matrix and on random
//!   mined-family scenarios by property test.
//! * **Replayability** — a delaying latency cell is a pure function of
//!   the seed: per-message delays come from a deterministic RNG, so two
//!   runs agree byte-for-byte *including* the `latency_*` observables.
//!   Pinned-seed goldens freeze one uniformly delayed, one exponentially
//!   delayed (bit-stable everywhere since the fixed-point `Exp` sampler),
//!   and one post-GST trajectory.
//! * **Real sockets** — the TCP loopback transport produces the same
//!   verdicts and protocol observables as lockstep; only wall-clock
//!   `latency_*` numbers (and, in principle, the `peak_resident_msgs`
//!   inflight gauge) are licensed to differ. This is the CI smoke cell's
//!   test-suite twin.

use ba_bench::{InputPattern, ProtocolSpec, RunRecord, Scenario, Sweep};
use ba_sim::{DelayDist, TransportSpec, DEFAULT_ROUND_MS};
use proptest::prelude::*;

/// Strips the substrate observables — `latency_*` (absent under lockstep)
/// and the engine gauges — leaving exactly the protocol observables the
/// byte-identity contract covers.
fn protocol_observables(runs: &[RunRecord]) -> Vec<RunRecord> {
    runs.iter()
        .map(|r| RunRecord {
            seed: r.seed,
            values: r
                .values
                .iter()
                .filter(|(name, _)| !name.starts_with("latency_") && !name.starts_with("peak_"))
                .cloned()
                .collect(),
        })
        .collect()
}

fn records(sc: &Scenario, seeds: u64, transport: TransportSpec) -> Vec<RunRecord> {
    let sc = sc.clone().transport(transport);
    let report = Sweep::new("transport", seeds, vec![sc]).run(1);
    report.cells[0].runs.clone()
}

fn uniform(gst_ms: u64) -> TransportSpec {
    TransportSpec::Latency {
        round_ms: DEFAULT_ROUND_MS,
        gst_ms,
        dist: DelayDist::Uniform { lo_ms: 1, hi_ms: 5 },
    }
}

/// Zero-delay + GST = 0 collapses to lockstep on an explicit family ×
/// input matrix — full records, gauges included (both transports hold a
/// message exactly one slot, so even `peak_resident_msgs` agrees).
#[test]
fn latency_zero_collapses_to_lockstep() {
    let cells: Vec<(&str, Scenario)> = vec![
        (
            "iter",
            Scenario::new("c", 24, ProtocolSpec::SubqHalf { lambda: 12.0, max_iters: Some(6) }),
        ),
        (
            "epoch",
            Scenario::new("c", 21, ProtocolSpec::SubqThird { lambda: 10.0, epochs: 5 })
                .inputs(InputPattern::Alternating),
        ),
        ("signed", Scenario::new("c", 9, ProtocolSpec::QuadraticHalf)),
        ("dolev_strong", Scenario::new("c", 8, ProtocolSpec::DolevStrong { ds_f: 2 }).f(2)),
    ];
    for (name, sc) in &cells {
        let lockstep = records(sc, 2, TransportSpec::Lockstep);
        let latency = records(sc, 2, TransportSpec::latency_zero());
        assert_eq!(
            protocol_observables(&latency),
            protocol_observables(&lockstep),
            "{name}: latency-zero diverged from lockstep"
        );
    }
}

/// A delaying latency cell replays byte-identically: same seed, same
/// report, `latency_*` observables included.
#[test]
fn latency_transport_is_deterministically_replayable() {
    let sc = Scenario::new("replay", 24, ProtocolSpec::SubqThird { lambda: 10.0, epochs: 5 });
    for transport in [uniform(0), uniform(50)] {
        let a = records(&sc, 3, transport);
        let b = records(&sc, 3, transport);
        assert_eq!(a, b, "latency transport ({transport}) is not replayable");
    }
}

/// TCP loopback: same protocol trajectory as lockstep, only the
/// wall-clock substrate differs. One small cell — this runs real sockets
/// and OS threads inside the test suite.
#[test]
fn tcp_loopback_matches_lockstep_on_protocol_observables() {
    let sc = Scenario::new("tcp", 12, ProtocolSpec::SubqHalf { lambda: 10.0, max_iters: Some(6) });
    let lockstep = records(&sc, 2, TransportSpec::Lockstep);
    let tcp = records(&sc, 2, TransportSpec::Tcp);
    assert_eq!(
        protocol_observables(&tcp),
        protocol_observables(&lockstep),
        "tcp loopback diverged from lockstep"
    );
    // And the wall-clock substrate actually measured something.
    for run in &tcp {
        let delivered = run
            .values
            .iter()
            .find(|(n, _)| n == "latency_delivered")
            .map(|(_, v)| *v)
            .expect("tcp run emits latency_delivered");
        assert!(delivered > 0.0, "tcp run delivered no messages");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random small mined-family scenarios: latency-zero ≡ lockstep,
    /// every time.
    #[test]
    fn latency_zero_matches_lockstep_on_random_scenarios(
        n in 16usize..40,
        lambda in 6u32..14,
        family in 0u8..2,
        seed_offset in 0u64..1000,
        unanimous in any::<Option<bool>>(),
    ) {
        let protocol = match family {
            0 => ProtocolSpec::SubqHalf { lambda: lambda as f64, max_iters: Some(5) },
            _ => ProtocolSpec::SubqThird { lambda: lambda as f64, epochs: 5 },
        };
        let inputs = match unanimous {
            Some(b) => InputPattern::Unanimous(b),
            None => InputPattern::Alternating,
        };
        let sc = Scenario::new("prop", n, protocol)
            .inputs(inputs)
            .seed_offset(seed_offset);
        let lockstep = records(&sc, 1, TransportSpec::Lockstep);
        let latency = records(&sc, 1, TransportSpec::latency_zero());
        prop_assert_eq!(
            protocol_observables(&latency),
            protocol_observables(&lockstep)
        );
    }
}

// Pinned goldens (seeds 0 and 1) for three latency cells: one uniformly
// delayed, one exponentially delayed, one GST-holdback. The replayability
// test above proves these cells are deterministic; the constants pin the
// trajectory itself, so a drift in delay sampling, round pacing, or GST
// holdback trips them. `DelayDist::Exp` qualifies since its sampler moved
// to Q32 fixed-point arithmetic (bit-stable across platforms and libms);
// earlier revisions had to skip it.

#[test]
fn golden_delayed_latency_cell() {
    let sc = Scenario::new("golden", 24, ProtocolSpec::SubqThird { lambda: 10.0, epochs: 5 });
    let cell_runs = records(&sc, 2, uniform(0));
    let pick = |name: &str| -> Vec<f64> {
        cell_runs
            .iter()
            .flat_map(|r| r.values.iter().filter(|(n, _)| n == name).map(|(_, v)| *v))
            .collect()
    };
    assert_eq!(pick("rounds"), GOLDEN_DELAYED_ROUNDS);
    assert_eq!(pick("multicasts"), GOLDEN_DELAYED_MULTICASTS);
    assert_eq!(pick("latency_delivered"), GOLDEN_DELAYED_DELIVERED);
    assert_eq!(pick("latency_late_deliveries"), GOLDEN_DELAYED_LATE);
    assert_eq!(pick("latency_delay_p50_ms"), GOLDEN_DELAYED_DELAY_P50);
    assert_eq!(pick("latency_commit_p99_ms"), GOLDEN_DELAYED_COMMIT_P99);
}

#[test]
fn golden_exp_delay_cell() {
    let sc = Scenario::new("golden", 24, ProtocolSpec::SubqThird { lambda: 10.0, epochs: 5 });
    let transport = TransportSpec::Latency {
        round_ms: DEFAULT_ROUND_MS,
        gst_ms: 0,
        dist: DelayDist::Exp { mean_ms: 3 },
    };
    let cell_runs = records(&sc, 2, transport);
    let pick = |name: &str| -> Vec<f64> {
        cell_runs
            .iter()
            .flat_map(|r| r.values.iter().filter(|(n, _)| n == name).map(|(_, v)| *v))
            .collect()
    };
    assert_eq!(pick("rounds"), GOLDEN_EXP_ROUNDS);
    assert_eq!(pick("multicasts"), GOLDEN_EXP_MULTICASTS);
    assert_eq!(pick("latency_delivered"), GOLDEN_EXP_DELIVERED);
    assert_eq!(pick("latency_late_deliveries"), GOLDEN_EXP_LATE);
    assert_eq!(pick("latency_delay_p50_ms"), GOLDEN_EXP_DELAY_P50);
    assert_eq!(pick("latency_commit_p99_ms"), GOLDEN_EXP_COMMIT_P99);
}

#[test]
fn golden_post_gst_cell() {
    let sc =
        Scenario::new("golden", 24, ProtocolSpec::SubqHalf { lambda: 12.0, max_iters: Some(8) });
    let transport =
        TransportSpec::Latency { round_ms: DEFAULT_ROUND_MS, gst_ms: 50, dist: DelayDist::Zero };
    let cell_runs = records(&sc, 2, transport);
    let pick = |name: &str| -> Vec<f64> {
        cell_runs
            .iter()
            .flat_map(|r| r.values.iter().filter(|(n, _)| n == name).map(|(_, v)| *v))
            .collect()
    };
    assert_eq!(pick("rounds"), GOLDEN_GST_ROUNDS);
    assert_eq!(pick("all_ok"), [1.0, 1.0], "iteration protocol must recover after GST");
    assert_eq!(pick("latency_late_deliveries"), GOLDEN_GST_LATE);
    assert_eq!(pick("latency_delay_p95_ms"), GOLDEN_GST_DELAY_P95);
    assert_eq!(pick("latency_commit_p50_ms"), GOLDEN_GST_COMMIT_P50);
}

const GOLDEN_DELAYED_ROUNDS: [f64; 2] = [11.0, 11.0];
const GOLDEN_DELAYED_MULTICASTS: [f64; 2] = [55.0, 53.0];
const GOLDEN_DELAYED_DELIVERED: [f64; 2] = [1320.0, 1272.0];
const GOLDEN_DELAYED_LATE: [f64; 2] = [1320.0, 1272.0];
const GOLDEN_DELAYED_DELAY_P50: [f64; 2] = [3.0, 3.0];
const GOLDEN_DELAYED_COMMIT_P99: [f64; 2] = [110.0, 110.0];
const GOLDEN_EXP_ROUNDS: [f64; 2] = [11.0, 11.0];
const GOLDEN_EXP_MULTICASTS: [f64; 2] = [54.0, 53.0];
const GOLDEN_EXP_DELIVERED: [f64; 2] = [1288.0, 1269.0];
const GOLDEN_EXP_LATE: [f64; 2] = [935.0, 894.0];
const GOLDEN_EXP_DELAY_P50: [f64; 2] = [2.0, 2.0];
const GOLDEN_EXP_COMMIT_P99: [f64; 2] = [110.0, 110.0];
const GOLDEN_GST_ROUNDS: [f64; 2] = [11.0, 11.0];
const GOLDEN_GST_LATE: [f64; 2] = [504.0, 624.0];
const GOLDEN_GST_DELAY_P95: [f64; 2] = [40.0, 40.0];
const GOLDEN_GST_COMMIT_P50: [f64; 2] = [110.0, 110.0];
