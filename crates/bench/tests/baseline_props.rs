//! Property tests for `baseline.rs`'s recursive-descent JSON parser and
//! report differ:
//!
//! * any serialized `SweepReport` parses back losslessly (the parsed DOM
//!   self-diffs clean, with every observable compared);
//! * arbitrary byte soup never panics the parser — it returns `Err` (or a
//!   valid value, for the rare accidental JSON);
//! * a depth-nesting bomb is rejected by the depth limit instead of
//!   overflowing the parser's stack.

use ba_bench::baseline::{parse_json, Json, MAX_JSON_DEPTH};
use ba_bench::{
    diff_reports, to_json, CellReport, InputPattern, ProtocolSpec, RunRecord, Scenario,
    SweepReport, Tolerance,
};
use proptest::prelude::*;

fn arb_text() -> impl Strategy<Value = String> {
    // ASCII including quotes, backslashes, and control characters.
    prop::collection::vec(0u8..127, 0..12)
        .prop_map(|bytes| bytes.into_iter().map(|b| b as char).collect())
}

fn arb_value() -> BoxedStrategy<f64> {
    prop_oneof![
        (0u32..1_000_000).prop_map(f64::from),
        (0u32..1_000_000).prop_map(|v| -f64::from(v)),
        0.0f64..1.0,
        Just(f64::NAN),
        Just(f64::INFINITY),
    ]
    .boxed()
}

/// An arbitrary report: unique sweep titles / cell labels / run seeds (the
/// differ treats duplicates as structural drift by design), arbitrary
/// observable names with repeats, arbitrary values including non-finite.
fn arb_report() -> impl Strategy<Value = Vec<SweepReport>> {
    const NAMES: [&str; 5] = ["rounds", "multicasts", "all_ok", "kbits", "x"];
    let run = prop::collection::vec((0usize..5, arb_value()), 0..8);
    let cell = (arb_text(), prop::collection::vec(run, 0..4));
    let sweep = (arb_text(), prop::collection::vec(cell, 0..4));
    prop::collection::vec(sweep, 1..3).prop_map(|sweeps| {
        sweeps
            .into_iter()
            .enumerate()
            .map(|(si, (title, cells))| SweepReport {
                title: format!("{title}#{si}"),
                seeds: cells.len() as u64,
                cells: cells
                    .into_iter()
                    .enumerate()
                    .map(|(ci, (label, runs))| CellReport {
                        scenario: Scenario::new(
                            format!("{label}#{ci}"),
                            8,
                            ProtocolSpec::QuadraticHalf,
                        )
                        .inputs(InputPattern::Unanimous(true)),
                        runs: runs
                            .into_iter()
                            .enumerate()
                            .map(|(ri, values)| {
                                let mut record = RunRecord::new(ri as u64);
                                for (pick, value) in values {
                                    record.push(NAMES[pick], value);
                                }
                                record
                            })
                            .collect(),
                        error: None,
                    })
                    .collect(),
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn serialized_reports_roundtrip_losslessly(reports in arb_report()) {
        let text = to_json("prop", &reports);
        let dom = parse_json(&text);
        prop_assert!(dom.is_ok(), "writer output must parse: {:?}", dom.err());
        let dom = dom.unwrap();
        prop_assert_eq!(dom.get("experiment").and_then(Json::as_str), Some("prop"));
        let sweeps = dom.get("sweeps").and_then(Json::as_arr).expect("sweeps array");
        prop_assert_eq!(sweeps.len(), reports.len());
        // Self-diff is the lossless-roundtrip oracle: every sweep, cell,
        // run, and observable must be found and compared clean.
        let diff = diff_reports(&text, &text, &Tolerance::default())
            .map_err(TestCaseError::fail)?;
        prop_assert!(diff.passed(), "self-diff drifted: {}", diff.render());
        let observables: usize = reports
            .iter()
            .flat_map(|r| &r.cells)
            .flat_map(|c| &c.runs)
            .map(|r| r.values.len())
            .sum();
        prop_assert_eq!(diff.compared, observables, "some observables were not compared");
    }

    #[test]
    fn byte_soup_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = parse_json(&text); // Err is fine; a panic fails the test.
    }

    #[test]
    fn structured_soup_never_panics(text in arb_json_ish()) {
        let _ = parse_json(&text);
    }
}

/// Strings biased toward JSON structure (brackets, quotes, colons) so the
/// fuzzing reaches deep into the parser instead of failing at byte 0.
fn arb_json_ish() -> impl Strategy<Value = String> {
    let token = prop_oneof![
        Just("{".to_string()),
        Just("}".to_string()),
        Just("[".to_string()),
        Just("]".to_string()),
        Just(":".to_string()),
        Just(",".to_string()),
        Just("\"".to_string()),
        Just("\\".to_string()),
        Just("null".to_string()),
        Just("true".to_string()),
        Just("-1.5e3".to_string()),
        Just("\"k\"".to_string()),
        Just(" ".to_string()),
    ];
    prop::collection::vec(token, 0..64).prop_map(|tokens| tokens.concat())
}

#[test]
fn depth_bomb_returns_err_instead_of_overflowing() {
    // A million-deep array must be rejected by the depth limit long before
    // the call stack is at risk.
    let bomb = "[".repeat(1 << 20);
    let err = parse_json(&bomb).expect_err("depth bomb must be rejected");
    assert!(err.contains("nesting deeper"), "{err}");
    // Same through the object path, and with a syntactically valid bomb.
    let obj_bomb = format!("{}1{}", "{\"k\":[".repeat(200_000), "]}".repeat(200_000));
    assert!(parse_json(&obj_bomb).is_err());
}

#[test]
fn depth_limit_is_tight() {
    // Nesting at the limit parses; one level beyond does not.
    let ok = format!("{}1{}", "[".repeat(MAX_JSON_DEPTH), "]".repeat(MAX_JSON_DEPTH));
    assert!(parse_json(&ok).is_ok(), "depth {MAX_JSON_DEPTH} must parse");
    let too_deep = format!("{}1{}", "[".repeat(MAX_JSON_DEPTH + 1), "]".repeat(MAX_JSON_DEPTH + 1));
    let err = parse_json(&too_deep).expect_err("one past the limit must fail");
    assert!(err.contains("nesting deeper"), "{err}");
}
