//! Gauntlet-matrix regression tests.
//!
//! * `--threads 1` vs `--threads 4` byte-identical JSON over the full
//!   smoke gauntlet (the acceptance criterion of the matrix: parallelism
//!   is observationally free).
//! * One pinned-seed golden cell per **new** adversary (equivocation
//!   spammer, silence-then-burst, adaptive eclipse): if these move, the
//!   adversary or the engine changed semantics, not plumbing.
//! * The honest edge of the matrix: every passive cell is fully correct
//!   and never drops a send.

use ba_bench::gauntlet::gauntlet_sweeps;
use ba_bench::{to_json, Grid, SweepReport};

fn smoke_reports(threads: usize) -> Vec<SweepReport> {
    smoke_reports_matrix(threads, 1)
}

/// Runs the whole smoke gauntlet with `threads` across-run sweep workers
/// and `sim_threads` in-execution workers per run.
fn smoke_reports_matrix(threads: usize, sim_threads: usize) -> Vec<SweepReport> {
    let mut sweeps = gauntlet_sweeps(Grid::Smoke, 2);
    for sweep in &mut sweeps {
        for scenario in &mut sweep.scenarios {
            scenario.sim_threads = sim_threads;
        }
    }
    sweeps.iter().map(|s| s.run(threads)).collect()
}

#[test]
fn gauntlet_threads_do_not_change_results() {
    let serial = to_json("e11_gauntlet", &smoke_reports(1));
    let parallel = to_json("e11_gauntlet", &smoke_reports(4));
    assert_eq!(serial, parallel, "thread count changed gauntlet results");
}

/// The full thread matrix: across-run sweep workers × in-execution round
/// workers. Every combination must render byte-identical JSON — sweep
/// parallelism is slot-addressed, and the round engine merges per-node
/// results in node-id order with seed-derived per-node randomness.
#[test]
fn gauntlet_sim_thread_matrix_byte_identical() {
    let reference = to_json("e11_gauntlet", &smoke_reports_matrix(1, 1));
    for sweep_threads in [1usize, 4] {
        for sim_threads in [1usize, 2, 4] {
            if (sweep_threads, sim_threads) == (1, 1) {
                continue;
            }
            let got = to_json("e11_gauntlet", &smoke_reports_matrix(sweep_threads, sim_threads));
            assert_eq!(
                got, reference,
                "sweep-threads={sweep_threads} sim-threads={sim_threads} changed the gauntlet"
            );
        }
    }
}

#[test]
fn honest_cells_are_clean() {
    for report in smoke_reports(2) {
        for cell in &report.cells {
            // Both `passive@` and the mined families' real-VRF
            // `passive_real@` rows are honest executions.
            if !cell.scenario.label.starts_with("passive") {
                continue;
            }
            assert_eq!(cell.count("all_ok"), cell.runs.len(), "{}: honest failure", report.title);
            assert_eq!(cell.total("dropped_sends"), 0.0, "{}: honest drop", report.title);
            assert_eq!(cell.total("corrupt_sends"), 0.0, "{}: phantom corrupt", report.title);
        }
    }
}

/// The real-eligibility satellite: switching the honest baseline to the
/// Appendix D VRF compiler changes the committee draws (a different
/// randomness source) but must leave every *safety* observable of the
/// honest cell identical to the ideal-functionality row at the same seeds.
#[test]
fn real_vs_ideal_eligibility_preserves_honest_safety() {
    let reports = smoke_reports(2);
    for sweep in ["iter/subq_half", "epoch/subq_third"] {
        for metric in ["consistent", "valid", "terminated", "all_ok", "dropped_sends"] {
            let ideal = cell_samples(&reports, sweep, "passive@static/f=0", metric);
            let real = cell_samples(&reports, sweep, "passive_real@static/f=0", metric);
            assert_eq!(
                ideal, real,
                "{sweep}: safety observable {metric:?} differs between ideal and real eligibility"
            );
        }
        // And the safety flags are not vacuous: every run is fully ok.
        let real_ok = cell_samples(&reports, sweep, "passive_real@static/f=0", "all_ok");
        assert_eq!(real_ok, [1.0, 1.0], "{sweep}: real-eligibility honest cell failed");
    }
}

/// Looks up one cell of the executed smoke gauntlet.
fn cell_samples(reports: &[SweepReport], sweep: &str, label: &str, metric: &str) -> Vec<f64> {
    reports
        .iter()
        .find(|r| r.title == sweep)
        .unwrap_or_else(|| panic!("no sweep {sweep:?}"))
        .cell(label)
        .samples(metric)
}

// Golden values regenerated from `e11_gauntlet --grid smoke --seeds 2`;
// each array is [seed 0, seed 1] for the named metric.

#[test]
fn golden_silence_burst_cell() {
    let reports = smoke_reports(2);
    let cell = |m| cell_samples(&reports, "iter/subq_half", "silence_burst@static/f=19", m);
    assert_eq!(cell("rounds"), [15.0, 26.0]);
    assert_eq!(cell("multicasts"), [64.0, 49.0]);
    // The backlog surfaces as injections, attributed to the adversary.
    assert_eq!(cell("injected_sends"), [11.0, 13.0]);
    assert_eq!(cell("corrupt_sends"), [42.0, 39.0]);
    assert_eq!(cell("all_ok"), [1.0, 0.0]);
}

#[test]
fn golden_adaptive_eclipse_cell() {
    let reports = smoke_reports(2);
    let cell = |m| cell_samples(&reports, "iter/subq_half", "adaptive_eclipse@adaptive/f=19", m);
    assert_eq!(cell("rounds"), [15.0, 26.0]);
    assert_eq!(cell("multicasts"), [67.0, 63.0]);
    // The eclipse spends the whole budget on observed speakers but never
    // sends or removes anything itself.
    assert_eq!(cell("corruptions"), [19.0, 19.0]);
    assert_eq!(cell("corrupt_sends"), [0.0, 0.0]);
    assert_eq!(cell("removals"), [0.0, 0.0]);
}

#[test]
fn golden_equivocation_spammer_cell() {
    let reports = smoke_reports(2);
    let cell =
        |m| cell_samples(&reports, "epoch/subq_third", "equivocation_spammer@static/f=10", m);
    assert_eq!(cell("equivocations"), [17.0, 19.0]);
    // Blocked = held exactly one credential, refused the second — the
    // events where bit specificity (not non-election) stopped the attack.
    assert_eq!(cell("equiv_blocked"), [21.0, 27.0]);
    assert_eq!(cell("injected_sends"), [612.0, 684.0]);
    // Bit-specific eligibility keeps the spam from breaking agreement.
    assert_eq!(cell("consistent"), [1.0, 1.0]);
    assert_eq!(cell("all_ok"), [1.0, 1.0]);
}

/// Pinned-seed goldens for the composed-adversary satellite rows, plus the
/// legality assertion: the composition's two wings share one corruption
/// budget and may never exceed it.
#[test]
fn golden_eclipse_burst_cells() {
    let reports = smoke_reports(2);
    // iter/subq_half at full budget f = 19: the burst wing silences the
    // last 9 nodes, the eclipse wing spends the remaining 10 adaptively.
    let iter_cell = |m| cell_samples(&reports, "iter/subq_half", "eclipse_burst@adaptive/f=19", m);
    assert_eq!(iter_cell("rounds"), GOLDEN_EB_ITER_ROUNDS);
    assert_eq!(iter_cell("multicasts"), GOLDEN_EB_ITER_MULTICASTS);
    assert_eq!(iter_cell("corruptions"), GOLDEN_EB_ITER_CORRUPTIONS);
    assert_eq!(iter_cell("injected_sends"), GOLDEN_EB_ITER_INJECTED);
    // epoch/subq_third at full budget f = 10.
    let epoch_cell =
        |m| cell_samples(&reports, "epoch/subq_third", "eclipse_burst@adaptive/f=10", m);
    assert_eq!(epoch_cell("rounds"), GOLDEN_EB_EPOCH_ROUNDS);
    assert_eq!(epoch_cell("corruptions"), GOLDEN_EB_EPOCH_CORRUPTIONS);
    // Legality on every composed row of the whole matrix: never over
    // budget, never removing.
    for report in &reports {
        for cell in &report.cells {
            if !cell.scenario.label.starts_with("eclipse_burst@") {
                continue;
            }
            let f = cell.scenario.f as f64;
            assert!(
                cell.samples("corruptions").iter().all(|&c| c <= f),
                "{}/{}: composition exceeded the budget",
                report.title,
                cell.scenario.label
            );
            assert_eq!(cell.total("removals"), 0.0, "{}: composition removed", report.title);
        }
    }
}

// Golden values regenerated from `e11_gauntlet --grid smoke --seeds 2`;
// each array is [seed 0, seed 1] for the named metric.
const GOLDEN_EB_ITER_ROUNDS: [f64; 2] = [15.0, 26.0];
const GOLDEN_EB_ITER_MULTICASTS: [f64; 2] = [70.0, 60.0];
const GOLDEN_EB_ITER_CORRUPTIONS: [f64; 2] = [19.0, 19.0];
const GOLDEN_EB_ITER_INJECTED: [f64; 2] = [5.0, 6.0];
const GOLDEN_EB_EPOCH_ROUNDS: [f64; 2] = [13.0, 13.0];
const GOLDEN_EB_EPOCH_CORRUPTIONS: [f64; 2] = [10.0, 10.0];

/// The competitor-family differential satellite: across their entire
/// smoke matrices — every adversary, every corruption model, every
/// fraction — Momose–Ren and CKS must hold *safety* (agreement and
/// validity) and never drop a send. Liveness is allowed exactly one
/// documented defeat: `mr/half` under the strongly adaptive
/// starve-quorum eraser, which retracts already-sent votes — outside
/// Momose–Ren's model, where a sent message is irrevocable. That cell is
/// pinned non-terminated-but-consistent; everything else terminates.
#[test]
fn competitor_families_hold_safety_under_every_attack() {
    let reports = smoke_reports(2);
    for sweep in ["mr/half", "cks/adaptive"] {
        let report = reports.iter().find(|r| r.title == sweep).expect("competitor sweep exists");
        for cell in &report.cells {
            let label = format!("{sweep}/{}", cell.scenario.label);
            assert_eq!(cell.count("consistent"), cell.runs.len(), "{label}: agreement broken");
            assert_eq!(cell.count("valid"), cell.runs.len(), "{label}: validity broken");
            assert_eq!(cell.total("dropped_sends"), 0.0, "{label}: dropped a unicast");
            let erased =
                sweep == "mr/half" && cell.scenario.label.starts_with("starve_quorum@strong");
            if erased {
                assert_eq!(cell.count("terminated"), 0, "{label}: pinned liveness defeat moved");
            } else {
                assert_eq!(cell.count("terminated"), cell.runs.len(), "{label}: liveness lost");
            }
        }
    }
}

#[test]
fn model_legality_edges_hold() {
    let reports = smoke_reports(2);
    for report in &reports {
        for cell in &report.cells {
            if cell.scenario.label.starts_with("adaptive_eclipse@static") {
                assert_eq!(cell.total("corruptions"), 0.0, "{}: static eclipse", report.title);
            }
            if cell.scenario.label.starts_with("starve_quorum@adaptive") {
                assert_eq!(cell.total("removals"), 0.0, "{}: adaptive eraser", report.title);
            }
        }
    }
}
