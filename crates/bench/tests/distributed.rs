//! Distributed-engine determinism and fault-injection tests — the
//! acceptance criteria of the coordinator/worker engine:
//!
//! * in-process `--threads 1`, `--workers 1`, and `--workers 3` render
//!   **byte-identical** JSON over a mixed 11-family grid (including the
//!   competitor BA families, whose descriptors carry the aggregate
//!   cert-encoding and claimed-bound wire fields) and over the full e11
//!   gauntlet smoke matrix;
//! * a worker that dies mid-cell (clean exit or SIGKILL) has its in-flight
//!   cell requeued, and the recovered report is still byte-identical;
//! * a poisoned cell that kills two workers is quarantined into a
//!   structured error record instead of hanging the sweep or crashing the
//!   coordinator, and the quarantine surfaces in the JSON renderer.
//!
//! The worker subprocess is the real `ba-bench worker` binary (Cargo
//! provides its path to integration tests), so these tests exercise the
//! actual pipes, the actual wire format, and actual process death.

use ba_bench::dist::DistConfig;
use ba_bench::{
    gauntlet_sweeps, quarantine_summary, run_sweeps_distributed, to_json, AdversarySpec, Grid,
    InputPattern, ProtocolSpec, Scenario, Sweep, SweepReport,
};
use ba_core::cert::CertEncoding;
use ba_sim::CorruptionModel;

/// The `ba-bench worker` command line, plus optional fault-injection flags.
fn worker_cmd(extra: &[&str]) -> Vec<String> {
    let mut cmd = vec![env!("CARGO_BIN_EXE_ba-bench").to_string(), "worker".to_string()];
    cmd.extend(extra.iter().map(|s| s.to_string()));
    cmd
}

fn dist_cfg(workers: usize, extra: &[&str]) -> DistConfig {
    DistConfig::new(workers, worker_cmd(extra))
}

/// The deliberately mixed grid of `sweep_determinism.rs`: three protocol
/// families, the competitor BA families, broadcasts, a lower-bound
/// workload, and an `F_mine` sampling workload in one sweep.
fn mixed_sweep() -> Sweep {
    Sweep::new(
        "determinism_grid",
        3,
        vec![
            Scenario::new("subq", 48, ProtocolSpec::SubqHalf { lambda: 12.0, max_iters: None }),
            Scenario::new("quad", 9, ProtocolSpec::QuadraticHalf)
                .inputs(InputPattern::Unanimous(true)),
            Scenario::new("epoch", 36, ProtocolSpec::SubqThird { lambda: 12.0, epochs: 6 }),
            Scenario::new("ds", 12, ProtocolSpec::DolevStrong { ds_f: 3 })
                .inputs(InputPattern::SenderParity),
            Scenario::new("ba_from_bb", 7, ProtocolSpec::BaFromBb { ds_f: 2 })
                .inputs(InputPattern::Unanimous(true)),
            Scenario::new("iter_bb", 40, ProtocolSpec::IterBroadcast { lambda: 14.0 })
                .inputs(InputPattern::SenderParity),
            // The competitor families ride the wire with their optional
            // descriptor fields set: aggregate certificates and the
            // claimed-bound observable must survive the worker roundtrip.
            Scenario::new("mr", 13, ProtocolSpec::MomoseRenHalf { views: 8 })
                .cert_encoding(CertEncoding::Aggregate)
                .with_claimed_bound(),
            Scenario::new("cks", 13, ProtocolSpec::CksAdaptive { phases: 6 })
                .cert_encoding(CertEncoding::Aggregate)
                .with_claimed_bound(),
            Scenario::new("thm4", 30, ProtocolSpec::Theorem4 { fanout: 2 })
                .f(10)
                .model(CorruptionModel::StronglyAdaptive),
            Scenario::new("tails", 120, ProtocolSpec::CommitteeTails { lambda: 16.0 })
                .f(48)
                .seeds(8),
            Scenario::new("crash", 48, ProtocolSpec::SubqHalf { lambda: 12.0, max_iters: None })
                .f(9)
                .adversary(AdversarySpec::CrashTail { at_round: 0 }),
        ],
    )
}

fn mixed_json(reports: &[SweepReport]) -> String {
    to_json("distributed", reports)
}

#[test]
fn workers_do_not_change_the_mixed_grid() {
    let sweep = mixed_sweep();
    let in_process = mixed_json(&[sweep.run(1)]);
    for workers in [1usize, 3] {
        let distributed = sweep.run_distributed(&dist_cfg(workers, &[])).expect("workers spawn");
        assert!(distributed.cells.iter().all(|c| c.error.is_none()), "spurious quarantine");
        assert_eq!(
            mixed_json(&[distributed]),
            in_process,
            "--workers {workers} changed the mixed grid"
        );
    }
}

#[test]
fn workers_do_not_change_the_full_gauntlet() {
    let sweeps = gauntlet_sweeps(Grid::Smoke, 2);
    let in_process: Vec<SweepReport> = sweeps.iter().map(|s| s.run(1)).collect();
    let distributed = run_sweeps_distributed(&sweeps, &dist_cfg(3, &[])).expect("workers spawn");
    assert_eq!(
        to_json("e11_gauntlet", &distributed),
        to_json("e11_gauntlet", &in_process),
        "3 worker processes changed the e11 gauntlet"
    );
}

#[test]
fn crash_recovery_keeps_reports_identical() {
    // Every worker completes one cell, then dies mid-cell. The coordinator
    // must requeue each lost cell onto a fresh replacement and still
    // produce the byte-identical report, with nothing quarantined.
    let sweep = mixed_sweep();
    let in_process = mixed_json(&[sweep.run(1)]);
    let recovered =
        sweep.run_distributed(&dist_cfg(3, &["--fail-after", "1"])).expect("workers spawn");
    assert!(
        recovered.cells.iter().all(|c| c.error.is_none()),
        "crash recovery must not quarantine healthy cells"
    );
    assert_eq!(mixed_json(&[recovered]), in_process, "worker crashes changed the report");
}

#[cfg(unix)]
#[test]
fn sigkill_mid_cell_keeps_reports_identical() {
    // The harshest death: SIGKILL mid-cell — no unwinding, no flushing, no
    // exit status beyond the signal.
    let sweep = mixed_sweep();
    let in_process = mixed_json(&[sweep.run(1)]);
    let recovered = sweep
        .run_distributed(&dist_cfg(2, &["--fail-after", "2", "--fail-mode", "kill"]))
        .expect("workers spawn");
    assert!(recovered.cells.iter().all(|c| c.error.is_none()));
    assert_eq!(mixed_json(&[recovered]), in_process, "SIGKILL mid-cell changed the report");
}

#[test]
fn poisoned_cell_is_quarantined_not_fatal() {
    // The vote flipper does not attack the iteration family: executing this
    // scenario panics, so every worker handed the cell dies on it. After
    // two deaths the coordinator must quarantine the cell and finish the
    // healthy remainder of the grid untouched.
    let healthy_a =
        Scenario::new("quad", 9, ProtocolSpec::QuadraticHalf).inputs(InputPattern::Unanimous(true));
    let healthy_b = Scenario::new("epoch", 36, ProtocolSpec::SubqThird { lambda: 12.0, epochs: 6 });
    let poison =
        Scenario::new("poison", 48, ProtocolSpec::SubqHalf { lambda: 12.0, max_iters: None })
            .f(9)
            .adversary(AdversarySpec::VoteFlipper);
    let sweep = Sweep::new("poisoned", 2, vec![healthy_a.clone(), poison, healthy_b.clone()]);

    let report = sweep.run_distributed(&dist_cfg(2, &[])).expect("workers spawn");
    let err = report.cells[1].error.as_ref().expect("poisoned cell must be quarantined");
    assert_eq!(err.attempts, 2, "quarantine after exactly two worker deaths");
    assert!(report.cells[1].runs.is_empty());

    // The healthy neighbours are untouched by the recovery dance.
    let expected = Sweep::new("poisoned", 2, vec![healthy_a, healthy_b]).run(1);
    assert_eq!(report.cells[0].runs, expected.cells[0].runs);
    assert_eq!(report.cells[2].runs, expected.cells[1].runs);

    // And the failure is loud: JSON carries the structured record, the
    // markdown summary names the cell.
    let json = to_json("poisoned", std::slice::from_ref(&report));
    assert!(json.contains("\"error\": {\"attempts\": 2"), "JSON omitted the quarantine record");
    let summary = quarantine_summary(std::slice::from_ref(&report)).expect("summary exists");
    assert!(summary.contains("poisoned/poison"), "summary must name the cell: {summary}");
}

#[test]
fn quarantine_detail_names_the_death() {
    // The structured error record must say *how* the cell failed (here:
    // the worker's panic-driven exit), not just that it did.
    let poison =
        Scenario::new("poison", 20, ProtocolSpec::SubqHalf { lambda: 8.0, max_iters: None })
            .f(4)
            .adversary(AdversarySpec::VoteFlipper);
    let sweep = Sweep::new("solo", 1, vec![poison]);
    let report = sweep.run_distributed(&dist_cfg(1, &[])).expect("workers spawn");
    let err = report.cells[0].error.as_ref().expect("quarantined");
    assert!(
        err.detail.contains("worker died mid-cell"),
        "detail should describe the death: {}",
        err.detail
    );
}
