//! Fault-layer regression tests at the bench layer.
//!
//! The chaos contract under test (tentpole of the fault-injection PR;
//! docs/FAULTS.md is the prose version):
//!
//! * **Pass-through** — an *empty* [`FaultPlan`] is structural: the
//!   wrapper forwards submits untouched and reports no fault stats, so a
//!   wrapped backend is byte-identical to the bare one. Proven for all
//!   three delivery backends (TCP compared on protocol observables only —
//!   its `latency_*` gauges are wall-clock).
//! * **Legal-envelope safety** — plans a model-legal adversary could have
//!   produced (adversarial scheduling, duplication) can never break
//!   agreement or validity, for either mined family. Random plans over
//!   those axes are safe by property test. Beyond-envelope plans (loss,
//!   cross-round deferral) are *not* asserted safe — e15 measures their
//!   erosion — but they must stay deterministic.
//! * **Replayability and backend-invariance** — fault decisions hash only
//!   (seed, plan, message id, receiver), so a faulted cell re-run is
//!   byte-identical *including* the `faults_*` observables, and lockstep
//!   and zero-delay latency agree on every protocol and fault observable
//!   under arbitrary plans.
//! * **Pinned goldens** — one dropped, one healed-partition, and one
//!   adversarially scheduled trajectory are frozen, so a drift in fault
//!   hashing, hold/release order, or scheduler sorting trips a test even
//!   if the change is internally consistent.

use ba_bench::{InputPattern, ProtocolSpec, RunRecord, Scenario, Sweep};
use ba_sim::{
    DelayDist, DropFault, DupFault, FaultPlan, PartitionFault, ReorderFault, Scheduler,
    TransportSpec, DEFAULT_ROUND_MS,
};
use proptest::prelude::*;

fn records(sc: &Scenario, seeds: u64) -> Vec<RunRecord> {
    let report = Sweep::new("faults", seeds, vec![sc.clone()]).run(1);
    report.cells[0].runs.clone()
}

/// Strips the wall-clock substrate (`latency_*`) and engine gauges,
/// keeping protocol *and* `faults_*` observables — both are covered by
/// the determinism contract.
fn deterministic_observables(runs: &[RunRecord]) -> Vec<RunRecord> {
    runs.iter()
        .map(|r| RunRecord {
            seed: r.seed,
            values: r
                .values
                .iter()
                .filter(|(name, _)| !name.starts_with("latency_") && !name.starts_with("peak_"))
                .cloned()
                .collect(),
        })
        .collect()
}

fn value(run: &RunRecord, name: &str) -> f64 {
    run.values.iter().find(|(n, _)| n == name).map(|(_, v)| *v).unwrap_or(0.0)
}

fn delayed_latency() -> TransportSpec {
    TransportSpec::Latency {
        round_ms: DEFAULT_ROUND_MS,
        gst_ms: 0,
        dist: DelayDist::Uniform { lo_ms: 1, hi_ms: 5 },
    }
}

/// Satellite: the empty-plan wrapper is a structural no-op on every
/// backend. Lockstep and latency compare full records (`latency_*`
/// included — the wrapper must not perturb delay sampling); TCP compares
/// the deterministic observables.
#[test]
fn empty_plan_wrapper_is_identical_to_the_bare_backend() {
    let sc = Scenario::new("id", 21, ProtocolSpec::SubqThird { lambda: 10.0, epochs: 5 })
        .inputs(InputPattern::Alternating);
    for (name, transport, exact) in [
        ("lockstep", TransportSpec::Lockstep, true),
        ("latency", delayed_latency(), true),
        ("tcp", TransportSpec::Tcp, false),
    ] {
        let bare = records(&sc.clone().transport(transport), 2);
        let wrapped = records(&sc.clone().transport(transport).faults(FaultPlan::default()), 2);
        if exact {
            assert_eq!(wrapped, bare, "{name}: empty-plan wrapper perturbed the run");
        } else {
            assert_eq!(
                deterministic_observables(&wrapped),
                deterministic_observables(&bare),
                "{name}: empty-plan wrapper perturbed the run"
            );
        }
        for run in &wrapped {
            assert_eq!(value(run, "faults_dropped"), 0.0, "{name}: empty plan reported faults");
        }
    }
}

/// A faulted TCP cell replays: real sockets underneath, but the fault
/// decisions key on (seed, plan, message id, receiver), so everything
/// except wall-clock gauges is reproducible.
#[test]
fn faulted_tcp_cell_replays_on_deterministic_observables() {
    let plan: FaultPlan = "drop:p=0.2,dup:p=0.1,sched=adversarial".parse().expect("plan");
    let sc =
        Scenario::new("replay", 12, ProtocolSpec::SubqHalf { lambda: 10.0, max_iters: Some(6) })
            .transport(TransportSpec::Tcp)
            .faults(plan);
    let a = records(&sc, 2);
    let b = records(&sc, 2);
    assert_eq!(deterministic_observables(&a), deterministic_observables(&b));
    assert!(a.iter().any(|r| value(r, "faults_dropped") > 0.0), "plan never fired");
}

fn mined_family(which: u8, lambda: f64) -> ProtocolSpec {
    match which {
        0 => ProtocolSpec::SubqHalf { lambda, max_iters: Some(5) },
        _ => ProtocolSpec::SubqThird { lambda, epochs: 5 },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random *legal-envelope* plans (duplication at any rate, either
    /// scheduler) never break agreement or validity on honest cells of
    /// either mined family: duplicates cannot add quorum weight (tallies
    /// key by sender) and delivery order within a round is the model
    /// adversary's to pick, so the paper's safety proofs apply verbatim.
    #[test]
    fn legal_envelope_plans_preserve_safety_on_random_cells(
        dup_ppm in 0u32..600_001,
        adversarial in any::<bool>(),
        family in 0u8..2,
        n in 16usize..40,
        lambda in 8u32..14,
        seed_offset in 0u64..1000,
        unanimous in any::<Option<bool>>(),
    ) {
        let plan = FaultPlan {
            duplicate: (dup_ppm > 0).then_some(DupFault { ppm: dup_ppm }),
            scheduler: if adversarial { Scheduler::Adversarial } else { Scheduler::Honest },
            ..FaultPlan::default()
        };
        let inputs = match unanimous {
            Some(b) => InputPattern::Unanimous(b),
            None => InputPattern::Alternating,
        };
        let sc = Scenario::new("legal", n, mined_family(family, lambda as f64))
            .inputs(inputs)
            .seed_offset(seed_offset)
            .faults(plan);
        for run in records(&sc, 1) {
            prop_assert_eq!(value(&run, "consistent"), 1.0, "agreement broke in-envelope");
            prop_assert_eq!(value(&run, "valid"), 1.0, "validity broke in-envelope");
        }
    }

    /// Arbitrary plans — including beyond-envelope loss, deferral, and
    /// partitions — are pure functions of (seed, plan): a re-run is
    /// byte-identical, and the zero-delay latency backend reproduces
    /// lockstep observable-for-observable under the same plan.
    #[test]
    fn arbitrary_plans_replay_and_are_backend_invariant(
        drop_ppm in 0u32..300_001,
        dup_ppm in 0u32..300_001,
        reorder_ppm in 0u32..300_001,
        budget in 1u64..4,
        partitioned in any::<bool>(),
        adversarial in any::<bool>(),
        family in 0u8..2,
        seed_offset in 0u64..1000,
    ) {
        let n = 20;
        let plan = FaultPlan {
            drop: (drop_ppm > 0)
                .then_some(DropFault { ppm: drop_ppm, from: 0, until: u64::MAX }),
            duplicate: (dup_ppm > 0).then_some(DupFault { ppm: dup_ppm }),
            reorder: (reorder_ppm > 0).then_some(ReorderFault { ppm: reorder_ppm, budget }),
            partition: partitioned
                .then_some(PartitionFault { from: 1, until: 3, split: n / 2 }),
            scheduler: if adversarial { Scheduler::Adversarial } else { Scheduler::Honest },
        };
        let sc = Scenario::new("replay", n, mined_family(family, 10.0))
            .seed_offset(seed_offset)
            .faults(plan);
        let lockstep = records(&sc, 1);
        prop_assert_eq!(&records(&sc, 1), &lockstep, "faulted lockstep cell failed to replay");
        let latency = records(
            &sc.clone().transport(TransportSpec::latency_zero()).faults(plan),
            1,
        );
        prop_assert_eq!(
            deterministic_observables(&latency),
            deterministic_observables(&lockstep),
            "fault layer diverged across backends"
        );
    }
}

// Pinned goldens (seeds 0 and 1, lockstep, n = 24). The replay tests
// above prove these cells are deterministic; the constants pin the
// trajectories themselves, so a drift in fault hashing, partition
// hold/release, or scheduler sorting trips a test even when it stays
// self-consistent.

fn golden_cell(sc: Scenario) -> Vec<RunRecord> {
    records(&sc, 2)
}

fn pick(runs: &[RunRecord], name: &str) -> Vec<f64> {
    runs.iter().map(|r| value(r, name)).collect()
}

/// A quarter of all copies dropped: the certificate-gated iteration
/// family keeps safety and pays (at most) extra iterations.
#[test]
fn golden_dropped_cell() {
    let sc =
        Scenario::new("golden", 24, ProtocolSpec::SubqHalf { lambda: 12.0, max_iters: Some(8) })
            .inputs(InputPattern::Unanimous(true))
            .faults("drop:p=0.25".parse().expect("plan"));
    let runs = golden_cell(sc);
    assert_eq!(pick(&runs, "consistent"), [1.0, 1.0]);
    assert_eq!(pick(&runs, "valid"), [1.0, 1.0]);
    assert_eq!(pick(&runs, "rounds"), GOLDEN_DROP_ROUNDS);
    assert_eq!(pick(&runs, "faults_dropped"), GOLDEN_DROP_DROPPED);
    assert_eq!(pick(&runs, "faults_undelivered"), GOLDEN_DROP_UNDELIVERED);
}

/// A hard split over rounds 1..3 healing at round 3: held copies land
/// after the heal and the cell recovers.
#[test]
fn golden_healed_partition_cell() {
    let sc =
        Scenario::new("golden", 24, ProtocolSpec::SubqHalf { lambda: 12.0, max_iters: Some(8) })
            .inputs(InputPattern::Unanimous(true))
            .faults("partition:1..3=12".parse().expect("plan"));
    let runs = golden_cell(sc);
    assert_eq!(pick(&runs, "all_ok"), [1.0, 1.0], "partition cell must recover after heal");
    assert_eq!(pick(&runs, "rounds"), GOLDEN_PART_ROUNDS);
    assert_eq!(pick(&runs, "partition_rounds"), GOLDEN_PART_PART_ROUNDS);
    assert_eq!(pick(&runs, "faults_partitioned"), GOLDEN_PART_HELD);
}

/// The adversarial scheduler alone (legal envelope): safety must hold,
/// and the whole trajectory is pinned — scheduling is the one fault axis
/// that leaves no `faults_*` trace, so only the golden catches drift.
#[test]
fn golden_adversarial_scheduler_cell() {
    let sc = Scenario::new("golden", 24, ProtocolSpec::SubqThird { lambda: 10.0, epochs: 5 })
        .inputs(InputPattern::Alternating)
        .faults("sched=adversarial".parse().expect("plan"));
    let runs = golden_cell(sc);
    assert_eq!(pick(&runs, "consistent"), [1.0, 1.0]);
    assert_eq!(pick(&runs, "valid"), [1.0, 1.0]);
    assert_eq!(pick(&runs, "rounds"), GOLDEN_SCHED_ROUNDS);
    assert_eq!(pick(&runs, "multicasts"), GOLDEN_SCHED_MULTICASTS);
    assert_eq!(pick(&runs, "kbits"), GOLDEN_SCHED_KBITS);
}

/// PR 9's chaos finding, pinned as a synchrony-boundary golden: under 20%
/// cross-round reordering the §3.1-style epoch family **forks without ever
/// slowing** — fixed `2R` pacing means deferred acks silently miss their
/// tally round, so different receivers see different quorums while every
/// node still terminates on schedule. The stale-vote audit ruled out an
/// accumulation bug (`tally_acks` rejects cross-epoch acks, replayed
/// evidence, and duplicate voters — pinned by a `ba-core` unit test), so
/// this inconsistency is the protocol's documented behavior outside its
/// synchrony envelope, not a defect: reorder20 is a beyond-envelope plan.
/// The constants freeze both the fork pattern and the never-slows shape.
#[test]
fn golden_reorder20_epoch_fork_is_a_synchrony_artifact() {
    let sc = Scenario::new("golden", 24, ProtocolSpec::SubqThird { lambda: 10.0, epochs: 5 })
        .inputs(InputPattern::Alternating)
        .faults("reorder:p=0.2".parse().expect("plan"));
    let runs = records(&sc, 5);
    assert_eq!(pick(&runs, "consistent"), GOLDEN_REORDER_CONSISTENT);
    assert_eq!(pick(&runs, "rounds"), GOLDEN_REORDER_ROUNDS, "fixed pacing must never slow");
    assert_eq!(pick(&runs, "faults_reordered"), GOLDEN_REORDER_REORDERED);
}

const GOLDEN_REORDER_CONSISTENT: [f64; 5] = [1.0, 1.0, 1.0, 1.0, 0.0];
const GOLDEN_REORDER_ROUNDS: [f64; 5] = [11.0; 5];
const GOLDEN_REORDER_REORDERED: [f64; 5] = [244.0, 246.0, 243.0, 230.0, 190.0];

const GOLDEN_DROP_ROUNDS: [f64; 2] = [4.0, 3.0];
const GOLDEN_DROP_DROPPED: [f64; 2] = [185.0, 264.0];
const GOLDEN_DROP_UNDELIVERED: [f64; 2] = [0.0, 0.0];
const GOLDEN_PART_ROUNDS: [f64; 2] = [5.0, 3.0];
const GOLDEN_PART_PART_ROUNDS: [f64; 2] = [2.0, 2.0];
const GOLDEN_PART_HELD: [f64; 2] = [288.0, 360.0];
const GOLDEN_SCHED_ROUNDS: [f64; 2] = [11.0, 11.0];
const GOLDEN_SCHED_MULTICASTS: [f64; 2] = [56.0, 50.0];
const GOLDEN_SCHED_KBITS: [f64; 2] = [61.432, 54.85];
