//! Property tests for the distributed wire protocol: arbitrary cell
//! descriptors round-trip losslessly through encode → decode (every
//! scenario axis, including `u64` payloads beyond 2⁵³ and labels full of
//! JSON-hostile characters), and arbitrary result lines re-encode
//! byte-identically after decoding.

use ba_bench::wire::{
    decode_descriptor, decode_reply, encode_descriptor, CellDescriptor, WorkerReply,
};
use ba_bench::{
    to_json_cell_line, AdversarySpec, CellReport, InputPattern, ProtocolSpec, RunRecord, Scenario,
};
use ba_sim::CorruptionModel;
use proptest::prelude::*;

fn arb_lambda() -> impl Strategy<Value = f64> {
    // Mix integral and fractional committee sizes (both JSON renderings).
    prop_oneof![(1u32..512).prop_map(f64::from), 0.5f64..256.0]
}

fn arb_label() -> impl Strategy<Value = String> {
    // ASCII including control characters, quotes, and backslashes — the
    // characters the JSON escaper must handle.
    prop::collection::vec(0u8..127, 0..16)
        .prop_map(|bytes| bytes.into_iter().map(|b| b as char).collect())
}

fn arb_inputs() -> BoxedStrategy<InputPattern> {
    prop_oneof![
        any::<bool>().prop_map(InputPattern::Unanimous),
        Just(InputPattern::Alternating),
        Just(InputPattern::EveryThird),
        (0.0f64..1.0).prop_map(InputPattern::FirstFrac),
        Just(InputPattern::SenderParity),
    ]
    .boxed()
}

fn arb_adversary() -> BoxedStrategy<AdversarySpec> {
    prop_oneof![
        Just(AdversarySpec::Passive),
        Just(AdversarySpec::CommitteeEraser),
        Just(AdversarySpec::StarveQuorum),
        any::<u64>().prop_map(|at_round| AdversarySpec::CrashTail { at_round }),
        any::<bool>().prop_map(|target| AdversarySpec::CertForger { target }),
        Just(AdversarySpec::VoteFlipper),
        Just(AdversarySpec::EquivocationSpammer),
        any::<u64>().prop_map(|at_round| AdversarySpec::SilenceThenBurst { at_round }),
        (0usize..64).prop_map(|per_round| AdversarySpec::AdaptiveEclipse { per_round }),
        any::<u64>().prop_map(|at_round| AdversarySpec::EclipseBurst { at_round }),
    ]
    .boxed()
}

fn arb_protocol() -> BoxedStrategy<ProtocolSpec> {
    prop_oneof![
        (arb_lambda(), any::<Option<u64>>())
            .prop_map(|(lambda, max_iters)| ProtocolSpec::SubqHalf { lambda, max_iters }),
        Just(ProtocolSpec::QuadraticHalf),
        any::<u64>().prop_map(|epochs| ProtocolSpec::WarmupThird { epochs }),
        (arb_lambda(), any::<u64>())
            .prop_map(|(lambda, epochs)| ProtocolSpec::SubqThird { lambda, epochs }),
        (arb_lambda(), any::<u64>())
            .prop_map(|(lambda, epochs)| ProtocolSpec::SubqShared { lambda, epochs }),
        (arb_lambda(), any::<u64>(), any::<bool>()).prop_map(|(lambda, epochs, erasure)| {
            ProtocolSpec::ChenMicali { lambda, epochs, erasure }
        }),
        (0usize..512).prop_map(|ds_f| ProtocolSpec::DolevStrong { ds_f }),
        (0usize..512).prop_map(|ds_f| ProtocolSpec::BaFromBb { ds_f }),
        arb_lambda().prop_map(|lambda| ProtocolSpec::IterBroadcast { lambda }),
        (0usize..512).prop_map(|fanout| ProtocolSpec::Theorem4 { fanout }),
        (0usize..512).prop_map(|committee| ProtocolSpec::Theorem3 { committee }),
        (arb_lambda(), any::<u64>())
            .prop_map(|(lambda, mine_seed)| ProtocolSpec::GoodIteration { lambda, mine_seed }),
        arb_lambda().prop_map(|lambda| ProtocolSpec::CommitteeTails { lambda }),
        arb_lambda().prop_map(|lambda| ProtocolSpec::CommitteeSample { lambda }),
    ]
    .boxed()
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    let shape = (arb_label(), 1usize..2048, 0usize..512, arb_protocol(), arb_inputs());
    let knobs = (
        arb_adversary(),
        prop_oneof![
            Just(CorruptionModel::Static),
            Just(CorruptionModel::Adaptive),
            Just(CorruptionModel::StronglyAdaptive)
        ],
        any::<bool>(),
        prop_oneof![Just(None), any::<u64>().prop_map(Some)],
        any::<u64>(),
        any::<Option<u64>>(),
        1usize..9,
    );
    (shape, knobs).prop_map(
        |(
            (label, n, f, protocol, inputs),
            (adversary, model, real, elig_fixed, seed_offset, seeds, sim_threads),
        )| {
            let mut sc = Scenario::new(label, n, protocol)
                .f(f)
                .model(model)
                .inputs(inputs)
                .adversary(adversary)
                .seed_offset(seed_offset)
                .sim_threads(sim_threads);
            if real {
                sc = sc.real_elig();
            }
            if let Some(seed) = elig_fixed {
                sc = sc.elig_fixed(seed);
            }
            sc.seeds = seeds;
            sc
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn descriptor_roundtrip_is_lossless(
        (id, sweep, seeds) in (any::<u64>(), arb_label(), any::<u64>()),
        scenario in arb_scenario(),
    ) {
        // Ids travel as plain JSON numbers; clamp into the exact range.
        let desc = CellDescriptor { id: id % (1 << 53), sweep, seeds, scenario };
        let line = encode_descriptor(&desc);
        let decoded = decode_descriptor(&line);
        prop_assert!(decoded.is_ok(), "decode failed: {:?} on {line}", decoded.err());
        prop_assert_eq!(decoded.unwrap(), desc);
    }

    #[test]
    fn result_lines_reencode_byte_identically(
        seeds in prop::collection::vec(0u64..1_000_000, 1..5),
        value_picks in prop::collection::vec((0usize..6, prop_oneof![
            (0u32..100_000).prop_map(f64::from),
            0.0f64..1.0,
            Just(f64::NAN),
        ]), 0..24),
    ) {
        const NAMES: [&str; 6] =
            ["rounds", "multicasts", "committee_size", "all_ok", "kbits", "decision"];
        let runs: Vec<RunRecord> = seeds
            .iter()
            .enumerate()
            .map(|(i, &seed)| {
                let mut record = RunRecord::new(seed);
                for (pick, value) in value_picks.iter().skip(i % 2) {
                    record.push(NAMES[*pick], *value);
                }
                record
            })
            .collect();
        let cell = CellReport {
            scenario: Scenario::new("cell", 5, ProtocolSpec::QuadraticHalf),
            runs,
            error: None,
        };
        let line = to_json_cell_line("sweep", 7, 3, &cell);
        let WorkerReply::Result { id, runs } = decode_reply(&line)
            .map_err(|e| TestCaseError::fail(format!("decode: {e}")))?
        else {
            return Err(TestCaseError::fail("expected a result reply"));
        };
        prop_assert_eq!(id, 7);
        // Decoding normalizes interleaved repeats into grouped order, which
        // is exactly what the renderer emits — so re-encoding the decoded
        // records must reproduce the original line byte for byte.
        let reencoded = to_json_cell_line(
            "sweep",
            7,
            3,
            &CellReport { scenario: cell.scenario.clone(), runs, error: None },
        );
        prop_assert_eq!(reencoded, line);
    }
}

/// Scenario axes that the typed API cannot produce must still decode — or
/// fail — without panicking; pin one canonical u64-extremes descriptor.
#[test]
fn u64_extremes_survive_the_wire() {
    let scenario = Scenario::new(
        "extreme",
        3,
        ProtocolSpec::GoodIteration { lambda: 7.0, mine_seed: u64::MAX },
    )
    .seed_offset(u64::MAX - 1)
    .elig_fixed(u64::MAX / 3);
    let desc = CellDescriptor { id: 0, sweep: "s".into(), seeds: u64::MAX, scenario };
    let decoded = decode_descriptor(&encode_descriptor(&desc)).expect("decodes");
    assert_eq!(decoded, desc, "u64 payloads must not pass through the f64 number space");
}
