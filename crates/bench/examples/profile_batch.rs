//! Quick wall-clock profiler for the Schnorr verification paths: the seed's
//! per-signature algorithm, the optimized single-verification API, and
//! batch verification (cold and with cached public-key tables).
//!
//! ```sh
//! cargo run --release -p ba-bench --example profile_batch
//! ```

use std::time::Instant;

use ba_crypto::group::Group;
use ba_crypto::schnorr::{verify_batch, BatchItem, SigningKey};
use ba_crypto::sha256::Sha256;

const N: usize = 64;
const REPS: usize = 50;

fn timed(label: &str, mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..REPS {
        f();
    }
    let us = start.elapsed().as_secs_f64() * 1e6 / REPS as f64;
    println!("{label:<42} {us:10.1} µs / round of {N}");
    us
}

fn main() {
    let g = Group::standard();
    let keys: Vec<SigningKey> =
        (0..N).map(|i| SigningKey::from_seed(&(i as u64).to_be_bytes())).collect();
    let vks: Vec<_> = keys.iter().map(|k| k.verifying_key()).collect();
    let msgs: Vec<Vec<u8>> =
        (0..N).map(|i| format!("(Vote, r=7, b={}, node={i})", i % 2).into_bytes()).collect();
    let sigs: Vec<_> = keys.iter().zip(&msgs).map(|(k, m)| k.sign(m)).collect();
    let items: Vec<BatchItem> =
        (0..N).map(|i| BatchItem { key: &vks[i], msg: &msgs[i], sig: &sigs[i] }).collect();

    let seed_path = timed("seed-path singles (x^q checks, generic pow)", || {
        for i in 0..N {
            let (sig, pk) = (&sigs[i], &vks[i].0);
            assert!(g.is_valid_element_slow(&sig.r) && g.is_valid_element_slow(pk));
            let e = g.scalar_from_digest(&Sha256::digest_parts(&[
                b"schnorr-challenge/v1",
                &sig.r.to_bytes(),
                &pk.to_bytes(),
                &msgs[i],
            ]));
            assert!(g.pow(&g.generator(), &sig.s) == g.mul(&sig.r, &g.pow(pk, &e)));
        }
    });
    let single = timed("optimized singles (jacobi + g-table)", || {
        for i in 0..N {
            assert!(vks[i].verify(&msgs[i], &sigs[i]));
        }
    });
    let batch_cold = timed("verify_batch (no cached pk tables)", || {
        assert!(verify_batch(&items));
    });
    for vk in &vks {
        g.ensure_cached_table(&vk.0);
    }
    let batch_warm = timed("verify_batch (cached pk tables)", || {
        assert!(verify_batch(&items));
    });

    println!();
    println!(
        "speedup vs seed path:        singles {:4.1}x, batch {:4.1}x",
        seed_path / single,
        seed_path / batch_warm
    );
    println!(
        "batch vs optimized singles:  cold {:4.1}x, warm {:4.1}x",
        single / batch_cold,
        single / batch_warm
    );
}
