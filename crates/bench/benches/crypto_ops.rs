//! Criterion microbenchmarks for the cryptographic substrate: the
//! primitives whose cost dominates the real-world (Appendix D) protocol.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use ba_crypto::bigint::{ModCtx, U256};
use ba_crypto::dleq;
use ba_crypto::group::Group;
use ba_crypto::hmac::hmac_sha256;
use ba_crypto::schnorr::SigningKey;
use ba_crypto::sha256::Sha256;
use ba_crypto::vrf::VrfSecretKey;

fn bench_sha256(c: &mut Criterion) {
    let data_1k = vec![0xA5u8; 1024];
    c.bench_function("sha256/1KiB", |b| b.iter(|| Sha256::digest(&data_1k)));
    c.bench_function("hmac_sha256/64B", |b| {
        b.iter(|| hmac_sha256(b"key-material", &data_1k[..64]))
    });
}

fn bench_modpow(c: &mut Criterion) {
    let g = Group::standard();
    let ctx = ModCtx::new(*g.prime());
    let base = U256::from_hex("deadbeefcafebabe0123456789abcdef00112233445566778899aabbccddeeff")
        .unwrap();
    let exp = *g.order();
    c.bench_function("modpow/256bit", |b| b.iter(|| ctx.pow(&base, &exp)));
}

fn bench_schnorr(c: &mut Criterion) {
    let key = SigningKey::from_seed(b"bench");
    let msg = b"(Vote, r=3, b=1)";
    let sig = key.sign(msg);
    c.bench_function("schnorr/sign", |b| b.iter(|| key.sign(msg)));
    c.bench_function("schnorr/verify", |b| {
        b.iter(|| assert!(key.verifying_key().verify(msg, &sig)))
    });
}

fn bench_vrf(c: &mut Criterion) {
    let key = VrfSecretKey::from_seed(b"bench");
    let msg = b"(ACK, epoch=4, bit=1)";
    let out = key.evaluate(msg);
    c.bench_function("vrf/evaluate", |b| b.iter(|| key.evaluate(msg)));
    c.bench_function("vrf/verify", |b| {
        b.iter(|| assert!(key.public_key().verify(msg, &out)))
    });
}

fn bench_dleq(c: &mut Criterion) {
    let g = Group::standard();
    let sk = g.scalar_from_bytes(b"bench-dleq");
    let pk = g.pow_g(&sk);
    let h = g.hash_to_group(b"bench", b"input");
    let v = g.pow(&h, &sk);
    let proof = dleq::prove(&sk, &h, &v);
    c.bench_function("dleq/prove", |b| b.iter(|| dleq::prove(&sk, &h, &v)));
    c.bench_function("dleq/verify", |b| {
        b.iter(|| assert!(dleq::verify(&pk, &h, &v, &proof)))
    });
}

fn bench_eligibility(c: &mut Criterion) {
    use ba_fmine::{Eligibility, IdealMine, MineParams, MineTag, MsgKind, RealMine};
    use ba_sim::NodeId;
    let params = MineParams::new(256, 32.0);
    let tag = MineTag::new(MsgKind::Vote, 1, true);

    let real = RealMine::from_seed(1, params);
    c.bench_function("fmine/real/mine", |b| b.iter(|| real.mine(NodeId(7), &tag)));
    let ticket = (0..256)
        .find_map(|i| real.mine(NodeId(i), &tag).map(|t| (NodeId(i), t)))
        .expect("lambda=32: someone is eligible");
    c.bench_function("fmine/real/verify", |b| {
        b.iter(|| assert!(real.verify(ticket.0, &tag, &ticket.1)))
    });

    c.bench_function("fmine/ideal/mine", |b| {
        b.iter_batched(
            || IdealMine::new(9, params),
            |ideal| ideal.mine(NodeId(7), &tag),
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = crypto;
    config = Criterion::default().sample_size(20);
    targets = bench_sha256, bench_modpow, bench_schnorr, bench_vrf, bench_dleq, bench_eligibility
}
criterion_main!(crypto);
