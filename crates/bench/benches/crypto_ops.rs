//! Criterion microbenchmarks for the cryptographic substrate: the
//! primitives whose cost dominates the real-world (Appendix D) protocol.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use ba_crypto::bigint::{ModCtx, U256};
use ba_crypto::dleq;
use ba_crypto::group::Group;
use ba_crypto::hmac::hmac_sha256;
use ba_crypto::schnorr::SigningKey;
use ba_crypto::sha256::Sha256;
use ba_crypto::vrf::VrfSecretKey;

fn bench_sha256(c: &mut Criterion) {
    let data_1k = vec![0xA5u8; 1024];
    c.bench_function("sha256/1KiB", |b| b.iter(|| Sha256::digest(&data_1k)));
    c.bench_function("hmac_sha256/64B", |b| {
        b.iter(|| hmac_sha256(b"key-material", &data_1k[..64]))
    });
}

/// The field-arithmetic acceptance comparisons: fused CIOS vs the generic
/// `mul_wide` + `redc` reference, and the dedicated squaring vs a general
/// multiplication by self.
fn bench_field_arith(c: &mut Criterion) {
    let g = Group::standard();
    let ctx = ModCtx::new(*g.prime());
    let a =
        U256::from_hex("deadbeefcafebabe0123456789abcdef00112233445566778899aabbccddeeff").unwrap();
    let b =
        U256::from_hex("0123456789abcdef00112233445566778899aabbccddeeffdeadbeefcafebabe").unwrap();
    // Every routine below is benched as a dependent chain (the output feeds
    // the next iteration's input) so the optimizer cannot hoist the pure,
    // loop-invariant call out of the measurement loop — and because a
    // dependent chain is exactly the shape of an exponentiation ladder.
    let mut x = a;
    c.bench_function("field/mul_wide", |bch| {
        bch.iter(|| {
            x = x.mul_wide(&b).low_u256();
            x
        })
    });
    let mut x = a;
    c.bench_function("field/sqr_wide", |bch| {
        bch.iter(|| {
            x = x.sqr_wide().low_u256();
            x
        })
    });
    let mut x = a;
    c.bench_function("field/mont_mul_cios", |bch| {
        bch.iter(|| {
            x = ctx.mont_mul(&x, &b);
            x
        })
    });
    let mut x = a;
    c.bench_function("field/mont_mul_ref_wide_redc", |bch| {
        bch.iter(|| {
            x = ctx.mont_mul_ref(&x, &b);
            x
        })
    });
    let mut x = a;
    c.bench_function("field/mont_sqr", |bch| {
        bch.iter(|| {
            x = ctx.mont_sqr(&x);
            x
        })
    });
    let mut x = a;
    c.bench_function("field/mont_mul_self", |bch| {
        bch.iter(|| {
            x = ctx.mont_mul(&x, &x);
            x
        })
    });
    // The production path for the standard group prime (2^256 - 36113):
    // pseudo-Mersenne folding, no Montgomery form at all.
    let mut x = a;
    c.bench_function("field/mul_fold_special", |bch| {
        bch.iter(|| {
            x = ctx.mul(&x, &b);
            x
        })
    });
    let mut x = a;
    c.bench_function("field/sqr_fold_special", |bch| {
        bch.iter(|| {
            x = ctx.sqr(&x);
            x
        })
    });
}

fn bench_modpow(c: &mut Criterion) {
    let g = Group::standard();
    let ctx = ModCtx::new(*g.prime());
    let base =
        U256::from_hex("deadbeefcafebabe0123456789abcdef00112233445566778899aabbccddeeff").unwrap();
    let exp = *g.order();
    c.bench_function("modpow/256bit", |b| b.iter(|| ctx.pow(&base, &exp)));
    // Fixed-base windowed exponentiation: table build once, then each
    // exponentiation skips every squaring.
    let table = ctx.precompute(&base);
    c.bench_function("modpow/256bit/fixed_base_table", |b| b.iter(|| ctx.pow_fixed(&table, &exp)));
    c.bench_function("modpow/table_build", |b| b.iter(|| ctx.precompute(&base)));
    // Straus double exponentiation vs two generic exponentiations.
    let base2 =
        U256::from_hex("0123456789abcdef00112233445566778899aabbccddeeffdeadbeefcafebabe").unwrap();
    let exp2 =
        U256::from_hex("7fffffffffffffffffffffffffffffffffffffffffffffffffffffffffff0001").unwrap();
    c.bench_function("modpow/double/straus", |b| b.iter(|| ctx.pow2(&base, &exp, &base2, &exp2)));
    c.bench_function("modpow/double/two_generic_pows", |b| {
        b.iter(|| {
            let p1 = ctx.pow(&base, &exp);
            let p2 = ctx.pow(&base2, &exp2);
            ctx.mul(&p1, &p2)
        })
    });
}

fn bench_schnorr(c: &mut Criterion) {
    let key = SigningKey::from_seed(b"bench");
    let msg = b"(Vote, r=3, b=1)";
    let sig = key.sign(msg);
    c.bench_function("schnorr/sign", |b| b.iter(|| key.sign(msg)));
    c.bench_function("schnorr/verify", |b| {
        b.iter(|| assert!(key.verifying_key().verify(msg, &sig)))
    });
}

/// The acceptance-criterion comparison: 64 single verifications vs one
/// batch-of-64 `verify_batch` call over the same signatures.
fn bench_schnorr_batch(c: &mut Criterion) {
    use ba_crypto::schnorr::{verify_batch, BatchItem};
    const N: usize = 64;
    let keys: Vec<SigningKey> =
        (0..N).map(|i| SigningKey::from_seed(&(i as u64).to_be_bytes())).collect();
    let vks: Vec<_> = keys.iter().map(|k| k.verifying_key()).collect();
    let msgs: Vec<Vec<u8>> =
        (0..N).map(|i| format!("(Vote, r=7, b={}, node={i})", i % 2).into_bytes()).collect();
    let sigs: Vec<_> = keys.iter().zip(&msgs).map(|(k, m)| k.sign(m)).collect();
    c.bench_function("schnorr/verify_single_x64", |b| {
        b.iter(|| {
            for i in 0..N {
                assert!(vks[i].verify(&msgs[i], &sigs[i]));
            }
        })
    });
    // The seed's per-signature verification algorithm (membership via the
    // defining x^q == 1 exponentiation, generic square-and-multiply for
    // both exponentiations) — the "before" column for CHANGES.md.
    let g = Group::standard();
    c.bench_function("schnorr/verify_single_x64_seed_path", |b| {
        b.iter(|| {
            for i in 0..N {
                let sig = &sigs[i];
                let pk = &vks[i].0;
                assert!(g.is_valid_element_slow(&sig.r) && g.is_valid_element_slow(pk));
                let e = g.scalar_from_digest(&ba_crypto::sha256::Sha256::digest_parts(&[
                    b"schnorr-challenge/v1",
                    &sig.r.to_bytes(),
                    &pk.to_bytes(),
                    &msgs[i],
                ]));
                let lhs = g.pow(&g.generator(), &sig.s);
                let rhs = g.mul(&sig.r, &g.pow(pk, &e));
                assert!(lhs == rhs);
            }
        })
    });
    let items: Vec<BatchItem> =
        (0..N).map(|i| BatchItem { key: &vks[i], msg: &msgs[i], sig: &sigs[i] }).collect();
    c.bench_function("schnorr/verify_batch_64", |b| b.iter(|| assert!(verify_batch(&items))));
    // With the signers' public keys registered in the fixed-base table
    // cache (what the PKI does at trusted setup).
    for vk in &vks {
        g.ensure_cached_table(&vk.0);
    }
    c.bench_function("schnorr/verify_batch_64_cached_pks", |b| {
        b.iter(|| assert!(verify_batch(&items)))
    });
}

/// Batch VRF verification vs per-evaluation verification.
fn bench_vrf_batch(c: &mut Criterion) {
    use ba_crypto::vrf::{verify_batch, BatchItem};
    const N: usize = 64;
    let keys: Vec<VrfSecretKey> =
        (0..N).map(|i| VrfSecretKey::from_seed(&(i as u64).to_be_bytes())).collect();
    let pks: Vec<_> = keys.iter().map(|k| k.public_key()).collect();
    let msgs: Vec<Vec<u8>> =
        (0..N).map(|i| format!("(ACK, epoch=4, bit={})", i % 2).into_bytes()).collect();
    let outs: Vec<_> = keys.iter().zip(&msgs).map(|(k, m)| k.evaluate(m)).collect();
    c.bench_function("vrf/verify_single_x64", |b| {
        b.iter(|| {
            for i in 0..N {
                assert!(pks[i].verify(&msgs[i], &outs[i]));
            }
        })
    });
    let items: Vec<BatchItem> =
        (0..N).map(|i| BatchItem { key: &pks[i], msg: &msgs[i], out: &outs[i] }).collect();
    c.bench_function("vrf/verify_batch_64", |b| b.iter(|| assert!(verify_batch(&items))));
}

fn bench_vrf(c: &mut Criterion) {
    let key = VrfSecretKey::from_seed(b"bench");
    let msg = b"(ACK, epoch=4, bit=1)";
    let out = key.evaluate(msg);
    c.bench_function("vrf/evaluate", |b| b.iter(|| key.evaluate(msg)));
    c.bench_function("vrf/verify", |b| b.iter(|| assert!(key.public_key().verify(msg, &out))));
}

fn bench_dleq(c: &mut Criterion) {
    let g = Group::standard();
    let sk = g.scalar_from_bytes(b"bench-dleq");
    let pk = g.pow_g(&sk);
    let h = g.hash_to_group(b"bench", b"input");
    let v = g.pow(&h, &sk);
    let proof = dleq::prove(&sk, &h, &v);
    c.bench_function("dleq/prove", |b| b.iter(|| dleq::prove(&sk, &h, &v)));
    c.bench_function("dleq/verify", |b| b.iter(|| assert!(dleq::verify(&pk, &h, &v, &proof))));
    // Registered long-lived keys: pk^{-e} leaves the shared squaring chain
    // and runs off the cached fixed-base table.
    let sk2 = g.scalar_from_bytes(b"bench-dleq-cached");
    let pk2 = g.pow_g(&sk2);
    let v2 = g.pow(&h, &sk2);
    let proof2 = dleq::prove(&sk2, &h, &v2);
    g.ensure_cached_table(&pk2);
    c.bench_function("dleq/verify_cached_pk", |b| {
        b.iter(|| assert!(dleq::verify(&pk2, &h, &v2, &proof2)))
    });
}

fn bench_eligibility(c: &mut Criterion) {
    use ba_fmine::{Eligibility, IdealMine, MineParams, MineTag, MsgKind, RealMine};
    use ba_sim::NodeId;
    let params = MineParams::new(256, 32.0);
    let tag = MineTag::new(MsgKind::Vote, 1, true);

    let real = RealMine::from_seed(1, params);
    c.bench_function("fmine/real/mine", |b| b.iter(|| real.mine(NodeId(7), &tag)));
    let ticket = (0..256)
        .find_map(|i| real.mine(NodeId(i), &tag).map(|t| (NodeId(i), t)))
        .expect("lambda=32: someone is eligible");
    c.bench_function("fmine/real/verify", |b| {
        b.iter(|| assert!(real.verify(ticket.0, &tag, &ticket.1)))
    });

    c.bench_function("fmine/ideal/mine", |b| {
        b.iter_batched(
            || IdealMine::new(9, params),
            |ideal| ideal.mine(NodeId(7), &tag),
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = crypto;
    config = Criterion::default().sample_size(20);
    targets = bench_field_arith, bench_sha256, bench_modpow, bench_schnorr, bench_schnorr_batch,
        bench_vrf, bench_vrf_batch, bench_dleq, bench_eligibility
}
criterion_main!(crypto);
