//! Criterion benchmarks for end-to-end protocol executions: the wall-clock
//! cost of one simulated agreement at various scales, in both the hybrid
//! and the real-crypto world.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ba_core::epoch::{self, EpochConfig};
use ba_core::iter::{self, IterConfig};
use ba_fmine::{Eligibility, IdealMine, Keychain, MineParams, RealMine, SigMode};
use ba_sim::{Bit, CorruptionModel, Passive, SimConfig};

fn mixed_inputs(n: usize) -> Vec<Bit> {
    (0..n).map(|i| i % 2 == 0).collect()
}

fn bench_subq_half(c: &mut Criterion) {
    let mut group = c.benchmark_group("subq_half");
    for n in [64usize, 256] {
        group.bench_with_input(BenchmarkId::new("ideal", n), &n, |b, &n| {
            b.iter(|| {
                let elig = Arc::new(IdealMine::new(7, MineParams::new(n, 24.0)));
                let cfg = IterConfig::subq_half(n, elig);
                let sim = SimConfig::new(n, 0, CorruptionModel::Static, 7);
                let (_, verdict) = iter::run(&cfg, &sim, mixed_inputs(n), Passive);
                assert!(verdict.consistent);
            })
        });
    }
    // Real crypto is ~3 orders of magnitude slower per primitive; bench the
    // small size only.
    group.sample_size(10);
    group.bench_function("real_crypto/n=64", |b| {
        b.iter(|| {
            let n = 64;
            let elig: Arc<dyn Eligibility> =
                Arc::new(RealMine::from_seed(7, MineParams::new(n, 16.0)));
            let cfg = IterConfig::subq_half(n, elig);
            let sim = SimConfig::new(n, 0, CorruptionModel::Static, 7);
            let (_, verdict) = iter::run(&cfg, &sim, mixed_inputs(n), Passive);
            assert!(verdict.consistent);
        })
    });
    group.finish();
}

fn bench_quadratic_half(c: &mut Criterion) {
    let mut group = c.benchmark_group("quadratic_half");
    for n in [33usize, 65] {
        group.bench_with_input(BenchmarkId::new("ideal_sigs", n), &n, |b, &n| {
            b.iter(|| {
                let kc = Arc::new(Keychain::from_seed(7, n, SigMode::Ideal));
                let cfg = IterConfig::quadratic_half(n, kc, 7);
                let sim = SimConfig::new(n, 0, CorruptionModel::Static, 7);
                let (_, verdict) = iter::run(&cfg, &sim, mixed_inputs(n), Passive);
                assert!(verdict.consistent);
            })
        });
    }
    group.finish();
}

fn bench_epoch_protocols(c: &mut Criterion) {
    let mut group = c.benchmark_group("epoch_family");
    group.bench_function("subq_third/n=256/R=8", |b| {
        b.iter(|| {
            let n = 256;
            let elig = Arc::new(IdealMine::new(3, MineParams::new(n, 24.0)));
            let cfg = EpochConfig::subq_third(n, 8, elig);
            let sim = SimConfig::new(n, 0, CorruptionModel::Static, 3);
            let (_, verdict) = epoch::run(&cfg, &sim, mixed_inputs(n), Passive);
            assert!(verdict.terminated);
        })
    });
    group.bench_function("warmup_third/n=64/R=8", |b| {
        b.iter(|| {
            let n = 64;
            let kc = Arc::new(Keychain::from_seed(3, n, SigMode::Ideal));
            let cfg = EpochConfig::warmup_third(n, 8, kc);
            let sim = SimConfig::new(n, 0, CorruptionModel::Static, 3);
            let (_, verdict) = epoch::run(&cfg, &sim, mixed_inputs(n), Passive);
            assert!(verdict.terminated);
        })
    });
    group.finish();
}

criterion_group! {
    name = protocols;
    config = Criterion::default().sample_size(10);
    targets = bench_subq_half, bench_quadratic_half, bench_epoch_protocols
}
criterion_main!(protocols);
