//! Mining tags: the messages `m` on which eligibility is elected.
//!
//! The paper's key insight (§3.2) is that the tag includes the **bit being
//! voted on**: the committee eligible to vote for `b` in round `r` is sampled
//! independently of the committee for `1 - b`. Appendix D allows
//! `b ∈ {0, 1, ⊥}` (a `Status` message may report "no certified bit"); we
//! additionally support a `b = *` wildcard realizing the *shared-committee*
//! ablation — the configuration the Remark in §3.3 proves insecure.

use ba_sim::Bit;

/// The message type being mined (covers both the §3.2 protocol and the
/// Appendix C.2 protocol).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MsgKind {
    /// Leader proposal (difficulty `D0`, success probability `1/(2n)`).
    Propose,
    /// §3.1/§3.2 warmup protocol acknowledgement.
    Ack,
    /// Appendix C status report (highest certificate).
    Status,
    /// Appendix C vote.
    Vote,
    /// Appendix C commit.
    Commit,
    /// Appendix C termination gadget (`(Terminate, b)`, no iteration).
    Terminate,
}

impl MsgKind {
    fn code(&self) -> u8 {
        match self {
            MsgKind::Propose => 0,
            MsgKind::Ack => 1,
            MsgKind::Status => 2,
            MsgKind::Vote => 3,
            MsgKind::Commit => 4,
            MsgKind::Terminate => 5,
        }
    }
}

/// The bit component of a mining tag.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TagBit {
    /// Voting for bit 0.
    Zero,
    /// Voting for bit 1.
    One,
    /// The ⊥ case (e.g. a `Status` with no certificate; Appendix D).
    Bot,
    /// Wildcard: the shared-committee (non-bit-specific) ablation.
    Any,
}

impl TagBit {
    /// Converts a protocol bit into a tag bit.
    pub fn from_bit(b: Bit) -> TagBit {
        if b {
            TagBit::One
        } else {
            TagBit::Zero
        }
    }

    fn code(&self) -> u8 {
        match self {
            TagBit::Zero => 0,
            TagBit::One => 1,
            TagBit::Bot => 2,
            TagBit::Any => 3,
        }
    }
}

/// A mining tag `m = (T, r, b)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct MineTag {
    /// Message type.
    pub kind: MsgKind,
    /// Iteration/epoch number (`None` for iteration-independent tags such as
    /// `Terminate`).
    pub iter: Option<u64>,
    /// The bit the committee votes on.
    pub bit: TagBit,
}

impl MineTag {
    /// Bit-specific tag for iteration `iter` (the paper's construction).
    pub fn new(kind: MsgKind, iter: u64, bit: Bit) -> MineTag {
        MineTag { kind, iter: Some(iter), bit: TagBit::from_bit(bit) }
    }

    /// Tag for the ⊥ bit (e.g. a certificate-less `Status`).
    pub fn bot(kind: MsgKind, iter: u64) -> MineTag {
        MineTag { kind, iter: Some(iter), bit: TagBit::Bot }
    }

    /// Bit-specific, iteration-independent tag (`Terminate`).
    pub fn terminate(bit: Bit) -> MineTag {
        MineTag { kind: MsgKind::Terminate, iter: None, bit: TagBit::from_bit(bit) }
    }

    /// Shared-committee (non-bit-specific) tag — the insecure ablation.
    pub fn shared(kind: MsgKind, iter: u64) -> MineTag {
        MineTag { kind, iter: Some(iter), bit: TagBit::Any }
    }

    /// The same tag with its bit erased to the wildcard (how the ablation
    /// derives its election tag from a statement tag).
    pub fn sharedized(&self) -> MineTag {
        MineTag { kind: self.kind, iter: self.iter, bit: TagBit::Any }
    }

    /// Canonical byte encoding used as VRF/PRF input.
    pub fn to_bytes(&self) -> [u8; 11] {
        let mut out = [0u8; 11];
        out[0] = self.kind.code();
        match self.iter {
            Some(r) => {
                out[1] = 1;
                out[2..10].copy_from_slice(&r.to_be_bytes());
            }
            None => out[1] = 0,
        }
        out[10] = self.bit.code();
        out
    }
}

impl std::fmt::Display for MineTag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({:?}", self.kind)?;
        if let Some(r) = self.iter {
            write!(f, ", r={r}")?;
        }
        match self.bit {
            TagBit::Zero => write!(f, ", b=0)"),
            TagBit::One => write!(f, ", b=1)"),
            TagBit::Bot => write!(f, ", b=_)"),
            TagBit::Any => write!(f, ", b=*)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encodings_are_injective() {
        let tags = [
            MineTag::new(MsgKind::Vote, 3, true),
            MineTag::new(MsgKind::Vote, 3, false),
            MineTag::new(MsgKind::Vote, 4, true),
            MineTag::new(MsgKind::Commit, 3, true),
            MineTag::terminate(true),
            MineTag::terminate(false),
            MineTag::shared(MsgKind::Vote, 3),
            MineTag::bot(MsgKind::Status, 3),
            MineTag::new(MsgKind::Propose, 0, false),
            MineTag::new(MsgKind::Ack, 0, false),
            MineTag::new(MsgKind::Status, 0, false),
        ];
        for (i, a) in tags.iter().enumerate() {
            for (j, b) in tags.iter().enumerate() {
                if i != j {
                    assert_ne!(a.to_bytes(), b.to_bytes(), "{a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(MineTag::new(MsgKind::Vote, 3, true).to_string(), "(Vote, r=3, b=1)");
        assert_eq!(MineTag::terminate(false).to_string(), "(Terminate, b=0)");
        assert_eq!(MineTag::shared(MsgKind::Ack, 2).to_string(), "(Ack, r=2, b=*)");
        assert_eq!(MineTag::bot(MsgKind::Status, 2).to_string(), "(Status, r=2, b=_)");
    }

    #[test]
    fn sharedized_erases_the_bit() {
        let specific = MineTag::new(MsgKind::Ack, 1, false);
        let shared = specific.sharedized();
        assert_eq!(shared, MineTag::shared(MsgKind::Ack, 1));
        assert_ne!(specific.to_bytes(), shared.to_bytes());
        // Crucially, both bits sharedize to the SAME tag — that is the flaw.
        assert_eq!(
            MineTag::new(MsgKind::Ack, 1, true).sharedized(),
            MineTag::new(MsgKind::Ack, 1, false).sharedized()
        );
    }

    #[test]
    fn tag_bit_roundtrip() {
        assert_eq!(TagBit::from_bit(true), TagBit::One);
        assert_eq!(TagBit::from_bit(false), TagBit::Zero);
    }
}
