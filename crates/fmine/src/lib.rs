//! # ba-fmine
//!
//! Eligibility election for the subquadratic BA protocols of
//! *"Communication Complexity of Byzantine Agreement, Revisited"*:
//!
//! * [`ideal::IdealMine`] — the `F_mine` ideal functionality, verbatim from
//!   Figure 1 (hybrid world);
//! * [`real::RealMine`] — the Appendix D real-world compiler: a DDH VRF with
//!   a DLEQ proof replaces the oracle (Appendix E argues the two worlds are
//!   indistinguishable; experiment E9 measures it);
//! * [`tag::MineTag`] — the mined messages `(T, r, b)`, with **bit-specific**
//!   eligibility (the paper's key insight) and a deliberately insecure
//!   shared-committee variant for the §3.3-Remark ablation;
//! * [`params::MineParams`] — the difficulty parameters `D` (committee,
//!   `λ/n`) and `D0` (leader, `1/(2n)`);
//! * [`pki::Keychain`] — the signing service (real Schnorr or ideal
//!   registry) used by the quadratic baselines.
//!
//! Both eligibility backends implement [`eligibility::Eligibility`], so every
//! protocol in `ba-core` runs unchanged in the hybrid and real worlds.

pub mod eligibility;
pub mod ideal;
pub mod params;
pub mod pki;
pub mod real;
pub mod tag;

pub use eligibility::{Eligibility, NeverMine, Ticket, TICKET_BITS};
pub use ideal::IdealMine;
pub use params::{probability_to_threshold, MineParams};
pub use pki::{AggSig, Keychain, Sig, SigMode, AGG_SIG_BITS, SIG_BITS};
pub use real::RealMine;
pub use tag::{MineTag, MsgKind};
