//! Difficulty parameters `D` and `D0` (§3.2 "Difficulty parameters").
//!
//! * `D` — committee election: each `Status`/`Ack`/`Vote`/`Commit`/
//!   `Terminate` mining attempt succeeds with probability `λ/n`, so each
//!   committee has expected size `λ` (over the `n` potential members).
//! * `D0` — leader election: each `Propose` attempt succeeds with
//!   probability `1/(2n)`, so in an honest execution (one attempt per node
//!   per iteration) a leader appears on average once every two iterations.

use crate::tag::{MineTag, MsgKind};

/// Election probabilities for a protocol instance.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MineParams {
    /// Number of nodes `n`.
    pub n: usize,
    /// Expected committee size `λ` (the paper's `λ = ω(log κ)`).
    pub lambda: f64,
}

impl MineParams {
    /// Creates parameters for `n` nodes with expected committee size
    /// `lambda`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < lambda <= n` and `n > 0`.
    pub fn new(n: usize, lambda: f64) -> MineParams {
        assert!(n > 0, "n must be positive");
        assert!(
            lambda > 0.0 && lambda <= n as f64,
            "lambda must lie in (0, n]; the paper assumes n >= 2*lambda"
        );
        MineParams { n, lambda }
    }

    /// Success probability for one mining attempt on `tag`.
    pub fn probability(&self, tag: &MineTag) -> f64 {
        match tag.kind {
            MsgKind::Propose => 1.0 / (2.0 * self.n as f64),
            _ => self.lambda / self.n as f64,
        }
    }

    /// The `u64` threshold corresponding to `tag`'s difficulty: an attempt
    /// with uniform score `rho` succeeds iff `rho < threshold`.
    pub fn threshold(&self, tag: &MineTag) -> u64 {
        probability_to_threshold(self.probability(tag))
    }

    /// Quorum size used by the subsampled protocols (`λ/2` for honest
    /// majority, Appendix C.2).
    pub fn half_quorum(&self) -> usize {
        (self.lambda / 2.0).ceil() as usize
    }

    /// Quorum size for the 1/3-resilience §3.2 protocol (`2λ/3`).
    pub fn two_thirds_quorum(&self) -> usize {
        (2.0 * self.lambda / 3.0).ceil() as usize
    }
}

/// Converts a probability in `[0, 1]` to a `u64` comparison threshold.
pub fn probability_to_threshold(p: f64) -> u64 {
    if p >= 1.0 {
        return u64::MAX;
    }
    if p <= 0.0 {
        return 0;
    }
    // Multiply in f64 then clamp; the error is ~2^-52 relative, irrelevant
    // for committee statistics.
    (p * (u64::MAX as f64)) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probabilities_follow_the_paper() {
        let p = MineParams::new(100, 20.0);
        assert!((p.probability(&MineTag::new(MsgKind::Vote, 1, true)) - 0.2).abs() < 1e-12);
        assert!((p.probability(&MineTag::terminate(false)) - 0.2).abs() < 1e-12);
        assert!((p.probability(&MineTag::new(MsgKind::Propose, 1, true)) - 0.005).abs() < 1e-12);
    }

    #[test]
    fn thresholds_monotone_in_probability() {
        let p = MineParams::new(100, 20.0);
        let vote = p.threshold(&MineTag::new(MsgKind::Vote, 1, true));
        let propose = p.threshold(&MineTag::new(MsgKind::Propose, 1, true));
        assert!(vote > propose);
    }

    #[test]
    fn threshold_edge_cases() {
        assert_eq!(probability_to_threshold(1.0), u64::MAX);
        assert_eq!(probability_to_threshold(2.0), u64::MAX);
        assert_eq!(probability_to_threshold(0.0), 0);
        assert_eq!(probability_to_threshold(-1.0), 0);
        let half = probability_to_threshold(0.5);
        let expected = u64::MAX / 2;
        assert!(half.abs_diff(expected) < 1 << 12);
    }

    #[test]
    fn quorums() {
        let p = MineParams::new(300, 30.0);
        assert_eq!(p.half_quorum(), 15);
        assert_eq!(p.two_thirds_quorum(), 20);
        let odd = MineParams::new(300, 25.0);
        assert_eq!(odd.half_quorum(), 13);
        assert_eq!(odd.two_thirds_quorum(), 17);
    }

    #[test]
    #[should_panic(expected = "lambda must lie in (0, n]")]
    fn oversized_lambda_panics() {
        let _ = MineParams::new(10, 20.0);
    }
}
