//! The real-world instantiation of `F_mine` (Appendix D compiler).
//!
//! A trusted setup gives every node a VRF key pair; the collection of public
//! keys is the PKI. A mining attempt for tag `m` evaluates the VRF on `m`'s
//! canonical bytes and succeeds iff the 64-bit prefix of the output falls
//! below the tag's difficulty threshold. The ticket carries the VRF output
//! and its DLEQ proof, which every receiver verifies — this plays both the
//! roles the paper assigns to the compiled message format `(m, i, ρ, π)`:
//! correctness of the eligibility claim *and* authentication of the vote
//! content (the tag is the statement being signed).

use ba_crypto::vrf::{VrfPublicKey, VrfSecretKey};
use ba_sim::NodeId;

use crate::eligibility::{Eligibility, Ticket};
use crate::params::MineParams;
use crate::tag::MineTag;

/// Domain separation for VRF evaluations, keyed per execution so different
/// simulated executions get independent committees.
fn vrf_input(execution_id: u64, tag: &MineTag) -> Vec<u8> {
    let mut input = Vec::with_capacity(32);
    input.extend_from_slice(b"fmine-real/v1/");
    input.extend_from_slice(&execution_id.to_be_bytes());
    input.extend_from_slice(&tag.to_bytes());
    input
}

/// VRF-backed eligibility election.
///
/// # Examples
///
/// ```
/// use ba_fmine::real::RealMine;
/// use ba_fmine::params::MineParams;
/// use ba_fmine::tag::{MineTag, MsgKind};
/// use ba_fmine::eligibility::Eligibility;
/// use ba_sim::NodeId;
///
/// let fmine = RealMine::from_seed(3, MineParams::new(16, 8.0));
/// let tag = MineTag::new(MsgKind::Ack, 1, false);
/// for i in 0..16 {
///     if let Some(ticket) = fmine.mine(NodeId(i), &tag) {
///         // The ticket is a publicly verifiable VRF proof.
///         assert!(fmine.verify(NodeId(i), &tag, &ticket));
///     }
/// }
/// ```
/// Cap on cached per-tag prepared VRF inputs (~30 KiB each, so ~8 MiB
/// resident worst case). Protocol executions touch a handful of tags per
/// round; the cap only bites on very long soaks, where a wholesale clear
/// costs one rebuild per live tag.
const PREPARED_CACHE_CAP: usize = 256;

#[derive(Debug)]
pub struct RealMine {
    execution_id: u64,
    params: MineParams,
    secret_keys: Vec<VrfSecretKey>,
    public_keys: Vec<VrfPublicKey>,
    /// Keeps the registered fixed-base tables alive for this instance's
    /// lifetime (the global cache evicts only unreferenced tables).
    _pk_tables: Vec<std::sync::Arc<ba_crypto::bigint::FixedBaseTable>>,
    /// Verification cache: `(node, tag, gamma, proof)` tickets already
    /// proven valid. Keying on the full ticket bytes keeps the accept set
    /// bit-identical to per-ticket verification (a foreign or mangled
    /// ticket never hits a cached entry). Positive results only.
    #[allow(clippy::type_complexity)]
    proven: std::sync::Mutex<std::collections::HashSet<(NodeId, [u8; 11], [u8; 32], [u8; 96])>>,
    /// Per-tag prepared VRF inputs: every node mines/verifies the same
    /// `(execution, tag)` message, so its hash-to-group element and
    /// fixed-base window table are computed once and shared across all `n`
    /// evaluations (outputs are bit-identical to unprepared evaluation).
    #[allow(clippy::type_complexity)]
    prepared: std::sync::Mutex<
        std::collections::HashMap<[u8; 11], std::sync::Arc<ba_crypto::vrf::PreparedInput>>,
    >,
}

impl RealMine {
    /// Runs the trusted setup: generates `n` VRF key pairs deterministically
    /// from `seed` and publishes the PKI.
    pub fn from_seed(seed: u64, params: MineParams) -> RealMine {
        Self::build(seed, params, true)
    }

    /// [`RealMine::from_seed`] without registering per-node fixed-base
    /// tables (~30 KiB each — `O(n)` tables would dominate resident memory
    /// at populations of 10⁵–10⁶ nodes). Verification falls back to plain
    /// exponentiation on table-cache misses; mining, verdicts, and tickets
    /// are bit-identical to the tabled setup. Committee work concentrates
    /// in `O(λ polylog n)` nodes per round and the `proven` cache makes
    /// each distinct ticket's proof check a one-time cost, so the tables
    /// buy little at scale.
    pub fn from_seed_untabled(seed: u64, params: MineParams) -> RealMine {
        Self::build(seed, params, false)
    }

    fn build(seed: u64, params: MineParams, register_tables: bool) -> RealMine {
        let secret_keys: Vec<VrfSecretKey> = (0..params.n)
            .map(|i| {
                let mut s = Vec::with_capacity(32);
                s.extend_from_slice(b"fmine-vrf-key/v1/");
                s.extend_from_slice(&seed.to_be_bytes());
                s.extend_from_slice(&(i as u64).to_be_bytes());
                VrfSecretKey::from_seed(&s)
            })
            .collect();
        let public_keys: Vec<VrfPublicKey> = secret_keys.iter().map(|k| k.public_key()).collect();
        // Trusted setup registers the PKI in the fixed-base table cache so
        // ticket verification (single and batch) runs off precomputed
        // windows; holding the Arcs keeps the tables safe from eviction
        // for this instance's lifetime.
        let pk_tables = if register_tables {
            let group = ba_crypto::group::Group::standard();
            public_keys.iter().map(|pk| group.ensure_cached_table(&pk.0)).collect()
        } else {
            Vec::new()
        };
        RealMine {
            execution_id: seed,
            params,
            secret_keys,
            public_keys,
            _pk_tables: pk_tables,
            proven: std::sync::Mutex::new(std::collections::HashSet::new()),
            prepared: std::sync::Mutex::new(std::collections::HashMap::new()),
        }
    }

    /// The tag's prepared VRF input (hash-to-group element + window table),
    /// built on first use and shared by every subsequent mine/verify.
    ///
    /// Bounded: each entry holds a ~30 KiB window table, and only the
    /// current round's few tags are ever live, so when the map outgrows
    /// [`PREPARED_CACHE_CAP`] it is cleared wholesale (in-flight `Arc`s
    /// stay valid; a re-prepared tag yields bit-identical results).
    fn prepared(&self, tag: &MineTag) -> std::sync::Arc<ba_crypto::vrf::PreparedInput> {
        let mut map = self.prepared.lock().expect("poisoned");
        if map.len() >= PREPARED_CACHE_CAP && !map.contains_key(&tag.to_bytes()) {
            map.clear();
        }
        map.entry(tag.to_bytes())
            .or_insert_with(|| {
                std::sync::Arc::new(ba_crypto::vrf::PreparedInput::new(&vrf_input(
                    self.execution_id,
                    tag,
                )))
            })
            .clone()
    }

    /// The published PKI (every node's VRF public key).
    pub fn pki(&self) -> &[VrfPublicKey] {
        &self.public_keys
    }

    /// Difficulty parameters in force.
    pub fn params(&self) -> &MineParams {
        &self.params
    }
}

impl Eligibility for RealMine {
    fn mine(&self, node: NodeId, tag: &MineTag) -> Option<Ticket> {
        let sk = &self.secret_keys[node.index()];
        let out = sk.evaluate_prepared(&self.prepared(tag));
        (out.rho_u64() < self.params.threshold(tag)).then_some(Ticket::Real(out))
    }

    fn would_mine(&self, node: NodeId, tag: &MineTag) -> bool {
        // Score-only probe: one table exponentiation, no DLEQ proof, no
        // ticket allocation — `mine` succeeds iff this returns true.
        let sk = &self.secret_keys[node.index()];
        sk.score_prepared(&self.prepared(tag)) < self.params.threshold(tag)
    }

    fn verify(&self, node: NodeId, tag: &MineTag, ticket: &Ticket) -> bool {
        let Ticket::Real(out) = ticket else {
            return false; // an ideal ticket cannot appear in the real world
        };
        if node.index() >= self.public_keys.len() {
            return false;
        }
        if out.rho_u64() >= self.params.threshold(tag) {
            return false;
        }
        let key = (node, tag.to_bytes(), out.gamma.to_bytes(), out.proof.to_bytes());
        if self.proven.lock().expect("poisoned").contains(&key) {
            return true;
        }
        let pk = &self.public_keys[node.index()];
        let ok = pk.verify_prepared(&self.prepared(tag), out);
        if ok {
            self.proven.lock().expect("poisoned").insert(key);
        }
        ok
    }

    fn verify_batch(&self, items: &[(NodeId, &MineTag, &Ticket)]) -> bool {
        // Difficulty thresholds and structural checks are cheap and decide
        // per item; the expensive VRF/DLEQ proofs collapse into one batched
        // multi-exponentiation over the claims not already in the
        // statement cache.
        let mut fresh = Vec::with_capacity(items.len());
        {
            let proven = self.proven.lock().expect("poisoned");
            let mut in_batch = std::collections::HashSet::new();
            for (node, tag, ticket) in items {
                let Ticket::Real(out) = ticket else { return false };
                if node.index() >= self.public_keys.len()
                    || out.rho_u64() >= self.params.threshold(tag)
                {
                    return false;
                }
                let key = (*node, tag.to_bytes(), out.gamma.to_bytes(), out.proof.to_bytes());
                if !proven.contains(&key) && in_batch.insert(key) {
                    fresh.push((*node, vrf_input(self.execution_id, tag), *out));
                }
            }
        }
        let batch: Vec<ba_crypto::vrf::BatchItem<'_>> = fresh
            .iter()
            .map(|(node, input, out)| ba_crypto::vrf::BatchItem {
                key: &self.public_keys[node.index()],
                msg: input,
                out,
            })
            .collect();
        let ok = ba_crypto::vrf::verify_batch(&batch);
        if ok {
            let mut proven = self.proven.lock().expect("poisoned");
            for (node, tag, ticket) in items {
                if let Ticket::Real(out) = ticket {
                    proven.insert((
                        *node,
                        tag.to_bytes(),
                        out.gamma.to_bytes(),
                        out.proof.to_bytes(),
                    ));
                }
            }
        }
        ok
    }

    fn supports_batch(&self) -> bool {
        true
    }

    fn lambda(&self) -> f64 {
        self.params.lambda
    }

    fn n(&self) -> usize {
        self.params.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tag::MsgKind;

    fn tag(iter: u64, bit: bool) -> MineTag {
        MineTag::new(MsgKind::Vote, iter, bit)
    }

    #[test]
    fn mined_tickets_verify() {
        let f = RealMine::from_seed(1, MineParams::new(24, 12.0));
        let t = tag(0, true);
        let mut found = 0;
        for i in 0..24 {
            if let Some(ticket) = f.mine(NodeId(i), &t) {
                assert!(f.verify(NodeId(i), &t, &ticket));
                found += 1;
            }
        }
        assert!(found > 0, "with lambda=12 over n=24 someone should be eligible");
    }

    #[test]
    fn tickets_do_not_transfer_between_nodes() {
        let f = RealMine::from_seed(2, MineParams::new(16, 16.0)); // everyone eligible
        let t = tag(0, true);
        let ticket = f.mine(NodeId(0), &t).expect("prob 1");
        assert!(!f.verify(NodeId(1), &t, &ticket));
    }

    #[test]
    fn tickets_do_not_transfer_between_tags() {
        let f = RealMine::from_seed(2, MineParams::new(16, 16.0));
        let ticket = f.mine(NodeId(0), &tag(0, true)).expect("prob 1");
        assert!(!f.verify(NodeId(0), &tag(0, false), &ticket));
        assert!(!f.verify(NodeId(0), &tag(1, true), &ticket));
    }

    #[test]
    fn unknown_node_rejected() {
        let f = RealMine::from_seed(2, MineParams::new(4, 4.0));
        let ticket = f.mine(NodeId(0), &tag(0, true)).expect("prob 1");
        assert!(!f.verify(NodeId(99), &tag(0, true), &ticket));
    }

    #[test]
    fn ideal_ticket_rejected_by_real_world() {
        let f = RealMine::from_seed(2, MineParams::new(4, 4.0));
        assert!(!f.verify(NodeId(0), &tag(0, true), &Ticket::Ideal));
    }

    #[test]
    fn different_executions_different_committees() {
        let f1 = RealMine::from_seed(10, MineParams::new(64, 16.0));
        let f2 = RealMine::from_seed(11, MineParams::new(64, 16.0));
        let t = tag(0, true);
        let c1: Vec<usize> = (0..64).filter(|&i| f1.mine(NodeId(i), &t).is_some()).collect();
        let c2: Vec<usize> = (0..64).filter(|&i| f2.mine(NodeId(i), &t).is_some()).collect();
        assert_ne!(c1, c2);
    }

    #[test]
    fn batch_matches_singles_and_rejects_one_bad_ticket() {
        let f = RealMine::from_seed(4, MineParams::new(8, 8.0)); // prob 1
        let t = tag(2, true);
        let tickets: Vec<Ticket> = (0..8).map(|i| f.mine(NodeId(i), &t).expect("prob 1")).collect();
        let items: Vec<(NodeId, &MineTag, &Ticket)> =
            (0..8).map(|i| (NodeId(i), &t, &tickets[i])).collect();
        assert!(f.verify_batch(&items));
        assert!(f.verify_batch(&[]), "empty batch is vacuous");
        // Swap one node's ticket for its neighbour's: singles reject, so
        // the batch must too — even though every other member is valid.
        let mut swapped = items.clone();
        swapped[3] = (NodeId(3), &t, &tickets[4]);
        assert!(!f.verify(NodeId(3), &t, &tickets[4]));
        assert!(!f.verify_batch(&swapped));
        // A batch hitting only the verification cache still accepts.
        assert!(f.verify_batch(&items));
    }

    #[test]
    fn would_mine_matches_mine_in_both_setups() {
        let tabled = RealMine::from_seed(7, MineParams::new(24, 8.0));
        let untabled = RealMine::from_seed_untabled(7, MineParams::new(24, 8.0));
        let t = tag(1, false);
        for i in 0..24 {
            let expect = tabled.mine(NodeId(i), &t).is_some();
            assert_eq!(tabled.would_mine(NodeId(i), &t), expect);
            assert_eq!(untabled.would_mine(NodeId(i), &t), expect);
            assert_eq!(untabled.mine(NodeId(i), &t), tabled.mine(NodeId(i), &t));
        }
    }

    #[test]
    fn untabled_setup_verifies_identically() {
        let tabled = RealMine::from_seed(9, MineParams::new(12, 12.0)); // prob 1
        let untabled = RealMine::from_seed_untabled(9, MineParams::new(12, 12.0));
        let t = tag(0, true);
        for i in 0..12 {
            let ticket = tabled.mine(NodeId(i), &t).expect("prob 1");
            assert_eq!(untabled.mine(NodeId(i), &t).as_ref(), Some(&ticket));
            assert!(untabled.verify(NodeId(i), &t, &ticket));
            assert!(!untabled.verify(NodeId((i + 1) % 12), &t, &ticket));
        }
    }

    #[test]
    fn never_mine_wrapper_blocks_mining_but_verifies() {
        use crate::eligibility::NeverMine;
        use std::sync::Arc;
        let inner = Arc::new(RealMine::from_seed(9, MineParams::new(8, 8.0))); // prob 1
        let t = tag(0, true);
        let ticket = inner.mine(NodeId(2), &t).expect("prob 1");
        let ghost = NeverMine(inner.clone() as Arc<dyn Eligibility>);
        assert!(ghost.mine(NodeId(2), &t).is_none());
        assert!(!ghost.would_mine(NodeId(2), &t));
        assert!(ghost.verify(NodeId(2), &t, &ticket));
        assert!(ghost.verify_batch(&[(NodeId(2), &t, &ticket)]));
        assert!(ghost.supports_batch());
        assert_eq!(ghost.n(), 8);
    }

    #[test]
    fn eligibility_is_deterministic() {
        let f = RealMine::from_seed(10, MineParams::new(32, 8.0));
        let t = tag(3, false);
        for i in 0..32 {
            assert_eq!(f.mine(NodeId(i), &t).is_some(), f.mine(NodeId(i), &t).is_some());
        }
    }
}
