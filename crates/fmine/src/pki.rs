//! PKI setup and the signing service used by the non-subsampled protocols.
//!
//! The §3.1 warmup, the Appendix C.1 quadratic protocol, and the
//! Dolev–Strong baseline sign every message with per-node keys from a
//! trusted setup. Two modes provide the same interface:
//!
//! * [`SigMode::Real`] — actual Schnorr signatures over the crate's group;
//! * [`SigMode::Ideal`] — an ideal signature functionality: a registry
//!   records exactly the `(signer, message)` pairs that were signed, so
//!   verification is perfectly unforgeable at zero computational cost.
//!   Experiments use this mode for large parameter sweeps; correctness of
//!   the substitution is itself covered by tests running both modes.

use std::collections::HashSet;
use std::sync::Mutex;

use ba_crypto::schnorr::{Signature, SigningKey, VerifyingKey};
use ba_sim::NodeId;

/// Which signature implementation backs a [`Keychain`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SigMode {
    /// Real Schnorr signatures.
    Real,
    /// Ideal signature functionality (registry-backed, unforgeable).
    Ideal,
}

/// A signature attached to protocol messages.
///
/// Both variants occupy the nominal Schnorr wire size (512 bits) for
/// complexity accounting.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Sig {
    /// A real Schnorr signature.
    Real(Signature),
    /// A handle into the ideal registry.
    Ideal,
}

/// Nominal signature wire size in bits (Schnorr: `R` + `s`).
pub const SIG_BITS: usize = 512;

impl Sig {
    /// Wire size in bits (identical across variants by design).
    pub fn size_bits(&self) -> usize {
        SIG_BITS
    }
}

/// The signing service for one execution: all nodes' keys plus the ideal
/// registry. Produced by trusted setup ([`Keychain::from_seed`]).
#[derive(Debug)]
pub struct Keychain {
    mode: SigMode,
    signing_keys: Vec<SigningKey>,
    verifying_keys: Vec<VerifyingKey>,
    /// Ideal-mode registry of (signer, message) pairs actually signed.
    registry: Mutex<HashSet<(NodeId, Vec<u8>)>>,
    /// Keeps the registered fixed-base tables alive for this keychain's
    /// lifetime: the global cache evicts only unreferenced tables, so a
    /// live PKI never loses its fast path mid-execution.
    _pk_tables: Vec<std::sync::Arc<ba_crypto::bigint::FixedBaseTable>>,
    /// Real-mode verification cache: `(signer, message, signature)` triples
    /// already proven valid. The protocols re-verify identical evidence
    /// constantly (certificates repeat votes across rounds); re-checking
    /// the same triple becomes an O(1) lookup. Keying on the signature
    /// bytes — not just the statement — keeps the accept set bit-identical
    /// to per-signature verification. Only positive results are cached, so
    /// a later genuine signature is never masked by an earlier forgery.
    proven: Mutex<ProvenSet>,
}

/// `(signer, message, signature-bytes)` triples proven valid.
type ProvenSet = HashSet<(NodeId, Vec<u8>, [u8; 64])>;

impl Keychain {
    /// Trusted setup: deterministically generates `n` key pairs.
    ///
    /// # Examples
    ///
    /// ```
    /// use ba_fmine::pki::{Keychain, SigMode};
    /// use ba_sim::NodeId;
    ///
    /// let chain = Keychain::from_seed(7, 4, SigMode::Real);
    /// let sig = chain.sign(NodeId(2), b"(Vote, r=1, b=0)");
    /// assert!(chain.verify(NodeId(2), b"(Vote, r=1, b=0)", &sig));
    /// assert!(!chain.verify(NodeId(3), b"(Vote, r=1, b=0)", &sig));
    /// ```
    pub fn from_seed(seed: u64, n: usize, mode: SigMode) -> Keychain {
        let signing_keys: Vec<SigningKey> = (0..n)
            .map(|i| {
                let mut s = Vec::with_capacity(32);
                s.extend_from_slice(b"keychain/v1/");
                s.extend_from_slice(&seed.to_be_bytes());
                s.extend_from_slice(&(i as u64).to_be_bytes());
                SigningKey::from_seed(&s)
            })
            .collect();
        let verifying_keys: Vec<VerifyingKey> =
            signing_keys.iter().map(|k| k.verifying_key()).collect();
        let mut pk_tables = Vec::new();
        if mode == SigMode::Real {
            // Trusted setup registers every public key in the process-wide
            // fixed-base table cache: single and batch verification then run
            // off precomputed windows instead of generic exponentiation.
            let group = ba_crypto::group::Group::standard();
            pk_tables = verifying_keys.iter().map(|vk| group.ensure_cached_table(&vk.0)).collect();
        }
        Keychain {
            mode,
            signing_keys,
            verifying_keys,
            _pk_tables: pk_tables,
            registry: Mutex::new(HashSet::new()),
            proven: Mutex::new(HashSet::new()),
        }
    }

    /// The signature mode in force.
    pub fn mode(&self) -> SigMode {
        self.mode
    }

    /// Number of enrolled nodes.
    pub fn n(&self) -> usize {
        self.signing_keys.len()
    }

    /// The public directory (the PKI).
    pub fn verifying_keys(&self) -> &[VerifyingKey] {
        &self.verifying_keys
    }

    /// Signs `msg` as `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not enrolled.
    pub fn sign(&self, node: NodeId, msg: &[u8]) -> Sig {
        match self.mode {
            SigMode::Real => Sig::Real(self.signing_keys[node.index()].sign(msg)),
            SigMode::Ideal => {
                self.registry.lock().expect("poisoned").insert((node, msg.to_vec()));
                Sig::Ideal
            }
        }
    }

    /// Verifies that `node` signed `msg`.
    pub fn verify(&self, node: NodeId, msg: &[u8], sig: &Sig) -> bool {
        if node.index() >= self.n() {
            return false;
        }
        match (self.mode, sig) {
            (SigMode::Real, Sig::Real(s)) => {
                let key = (node, msg.to_vec(), s.to_bytes());
                if self.proven.lock().expect("poisoned").contains(&key) {
                    return true;
                }
                let ok = self.verifying_keys[node.index()].verify(msg, s);
                if ok {
                    self.proven.lock().expect("poisoned").insert(key);
                }
                ok
            }
            (SigMode::Ideal, Sig::Ideal) => {
                self.registry.lock().expect("poisoned").contains(&(node, msg.to_vec()))
            }
            _ => false, // mode/variant mismatch is a wiring bug, never valid
        }
    }

    /// Verifies a batch of `(signer, message, signature)` claims at once.
    ///
    /// In [`SigMode::Real`] this collapses to one random-linear-combination
    /// check over all Schnorr signatures ([`ba_crypto::schnorr::verify_batch`]);
    /// in [`SigMode::Ideal`] it is a registry sweep under a single lock.
    /// Returns `true` iff **every** claim verifies (up to the documented
    /// `2^-48`-per-member batch soundness in real mode); the empty batch
    /// verifies trivially.
    pub fn verify_batch(&self, items: &[(NodeId, &[u8], &Sig)]) -> bool {
        match self.mode {
            SigMode::Real => {
                let mut batch = Vec::with_capacity(items.len());
                {
                    let proven = self.proven.lock().expect("poisoned");
                    // Inboxes repeat identical claims (certificates share
                    // votes); verify each distinct triple once.
                    let mut in_batch: HashSet<(NodeId, &[u8], [u8; 64])> = HashSet::new();
                    for (node, msg, sig) in items {
                        if node.index() >= self.n() {
                            return false;
                        }
                        let Sig::Real(s) = sig else { return false };
                        if proven.contains(&(*node, msg.to_vec(), s.to_bytes()))
                            || !in_batch.insert((*node, msg, s.to_bytes()))
                        {
                            continue; // already proven or already queued
                        }
                        batch.push(ba_crypto::schnorr::BatchItem {
                            key: &self.verifying_keys[node.index()],
                            msg,
                            sig: s,
                        });
                    }
                }
                let ok = ba_crypto::schnorr::verify_batch(&batch);
                if ok {
                    let mut proven = self.proven.lock().expect("poisoned");
                    for (node, msg, sig) in items {
                        if let Sig::Real(s) = sig {
                            proven.insert((*node, msg.to_vec(), s.to_bytes()));
                        }
                    }
                }
                ok
            }
            SigMode::Ideal => {
                let registry = self.registry.lock().expect("poisoned");
                items.iter().all(|(node, msg, sig)| {
                    node.index() < self.n()
                        && matches!(sig, Sig::Ideal)
                        && registry.contains(&(*node, msg.to_vec()))
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_mode_roundtrip() {
        let chain = Keychain::from_seed(1, 3, SigMode::Real);
        let sig = chain.sign(NodeId(0), b"hello");
        assert!(chain.verify(NodeId(0), b"hello", &sig));
        assert!(!chain.verify(NodeId(0), b"other", &sig));
        assert!(!chain.verify(NodeId(1), b"hello", &sig));
        assert!(!chain.verify(NodeId(99), b"hello", &sig));
    }

    #[test]
    fn ideal_mode_registry_semantics() {
        let chain = Keychain::from_seed(1, 3, SigMode::Ideal);
        // Verification fails for a message never signed (unforgeability).
        assert!(!chain.verify(NodeId(0), b"unsigned", &Sig::Ideal));
        let sig = chain.sign(NodeId(0), b"signed");
        assert!(chain.verify(NodeId(0), b"signed", &sig));
        // Node 1 never signed it.
        assert!(!chain.verify(NodeId(1), b"signed", &sig));
    }

    #[test]
    fn mode_mismatch_rejected() {
        let real = Keychain::from_seed(1, 2, SigMode::Real);
        let ideal = Keychain::from_seed(1, 2, SigMode::Ideal);
        let real_sig = real.sign(NodeId(0), b"m");
        let ideal_sig = ideal.sign(NodeId(0), b"m");
        assert!(!real.verify(NodeId(0), b"m", &ideal_sig));
        assert!(!ideal.verify(NodeId(0), b"m", &real_sig));
    }

    #[test]
    fn deterministic_keys_per_seed() {
        let a = Keychain::from_seed(5, 2, SigMode::Real);
        let b = Keychain::from_seed(5, 2, SigMode::Real);
        let c = Keychain::from_seed(6, 2, SigMode::Real);
        assert_eq!(a.verifying_keys()[0], b.verifying_keys()[0]);
        assert_ne!(a.verifying_keys()[0], c.verifying_keys()[0]);
    }

    #[test]
    fn sig_size_constant() {
        let chain = Keychain::from_seed(1, 1, SigMode::Ideal);
        assert_eq!(chain.sign(NodeId(0), b"m").size_bits(), SIG_BITS);
    }

    #[test]
    fn batch_matches_singles_in_both_modes() {
        for mode in [SigMode::Real, SigMode::Ideal] {
            let chain = Keychain::from_seed(7, 4, mode);
            let msgs: Vec<Vec<u8>> = (0..4).map(|i| format!("m{i}").into_bytes()).collect();
            let sigs: Vec<Sig> = (0..4).map(|i| chain.sign(NodeId(i), &msgs[i])).collect();
            let items: Vec<(NodeId, &[u8], &Sig)> =
                (0..4).map(|i| (NodeId(i), msgs[i].as_slice(), &sigs[i])).collect();
            assert!(chain.verify_batch(&items), "{mode:?}");
            assert!(chain.verify_batch(&[]), "{mode:?}: empty batch is vacuous");
            // One bad member (signature for the wrong message) sinks the batch.
            let bad = chain.sign(NodeId(2), b"other");
            let mut tampered = items.clone();
            tampered[2] = (NodeId(2), msgs[3].as_slice(), &bad);
            assert!(!chain.verify_batch(&tampered), "{mode:?}");
            // And an out-of-range signer is rejected outright.
            let oob = vec![(NodeId(99), msgs[0].as_slice(), &sigs[0])];
            assert!(!chain.verify_batch(&oob), "{mode:?}");
        }
    }

    #[test]
    fn cached_verification_still_rejects_tampered_sig() {
        // A positive cache entry for (node, msg, sig) must not leak to a
        // different signature over the same statement.
        let chain = Keychain::from_seed(9, 2, SigMode::Real);
        let sig = chain.sign(NodeId(0), b"stmt");
        assert!(chain.verify(NodeId(0), b"stmt", &sig));
        assert!(chain.verify(NodeId(0), b"stmt", &sig), "cache hit stays valid");
        let Sig::Real(real) = sig else { unreachable!() };
        let g = ba_crypto::group::Group::standard();
        let forged = Sig::Real(ba_crypto::schnorr::Signature {
            r: real.r,
            s: g.scalar_add(&real.s, &g.scalar_from_u64(1)),
        });
        assert!(!chain.verify(NodeId(0), b"stmt", &forged));
    }
}
