//! PKI setup and the signing service used by the non-subsampled protocols.
//!
//! The §3.1 warmup, the Appendix C.1 quadratic protocol, and the
//! Dolev–Strong baseline sign every message with per-node keys from a
//! trusted setup. Two modes provide the same interface:
//!
//! * [`SigMode::Real`] — actual Schnorr signatures over the crate's group;
//! * [`SigMode::Ideal`] — an ideal signature functionality: a registry
//!   records exactly the `(signer, message)` pairs that were signed, so
//!   verification is perfectly unforgeable at zero computational cost.
//!   Experiments use this mode for large parameter sweeps; correctness of
//!   the substitution is itself covered by tests running both modes.

use std::collections::HashSet;
use std::sync::Mutex;

use ba_crypto::aggregate::{self, AggregateSignature};
use ba_crypto::schnorr::{Signature, SigningKey, VerifyingKey};
use ba_sim::NodeId;

/// Which signature implementation backs a [`Keychain`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SigMode {
    /// Real Schnorr signatures.
    Real,
    /// Ideal signature functionality (registry-backed, unforgeable).
    Ideal,
}

/// A signature attached to protocol messages.
///
/// Both variants occupy the nominal Schnorr wire size (512 bits) for
/// complexity accounting.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Sig {
    /// A real Schnorr signature.
    Real(Signature),
    /// A handle into the ideal registry.
    Ideal,
}

/// Nominal signature wire size in bits (Schnorr: `R` + `s`).
pub const SIG_BITS: usize = 512;

impl Sig {
    /// Wire size in bits (identical across variants by design).
    pub fn size_bits(&self) -> usize {
        SIG_BITS
    }
}

/// One aggregate signature standing in for a whole quorum's worth of
/// [`Sig`]s on a shared statement. Produced by [`Keychain::aggregate`].
///
/// Mirrors [`Sig`]'s two modes: real MuSig-style aggregation over the
/// Schnorr group, or the ideal functionality (the registry already records
/// exactly who signed what, so an ideal aggregate is pure accounting).
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum AggSig {
    /// A real aggregate Schnorr signature.
    Real(AggregateSignature),
    /// A handle into the ideal registry (valid iff every claimed signer
    /// actually signed the statement).
    Ideal,
}

/// Nominal aggregate-signature wire size in bits — one Schnorr `(R, s)`
/// pair, independent of the signer count. This constant *is* the
/// communication win: a quorum certificate shrinks from `quorum × SIG_BITS`
/// of evidence to `AGG_SIG_BITS` plus a signer bitmap.
pub const AGG_SIG_BITS: usize = 512;

impl AggSig {
    /// Wire size in bits (identical across variants by design).
    pub fn size_bits(&self) -> usize {
        AGG_SIG_BITS
    }
}

/// The signing service for one execution: all nodes' keys plus the ideal
/// registry. Produced by trusted setup ([`Keychain::from_seed`]).
#[derive(Debug)]
pub struct Keychain {
    mode: SigMode,
    signing_keys: Vec<SigningKey>,
    verifying_keys: Vec<VerifyingKey>,
    /// Ideal-mode registry of (signer, message) pairs actually signed.
    registry: Mutex<HashSet<(NodeId, Vec<u8>)>>,
    /// Keeps the registered fixed-base tables alive for this keychain's
    /// lifetime: the global cache evicts only unreferenced tables, so a
    /// live PKI never loses its fast path mid-execution.
    _pk_tables: Vec<std::sync::Arc<ba_crypto::bigint::FixedBaseTable>>,
    /// Real-mode verification cache: `(signer, message, signature)` triples
    /// already proven valid. The protocols re-verify identical evidence
    /// constantly (certificates repeat votes across rounds); re-checking
    /// the same triple becomes an O(1) lookup. Keying on the signature
    /// bytes — not just the statement — keeps the accept set bit-identical
    /// to per-signature verification. Only positive results are cached, so
    /// a later genuine signature is never masked by an earlier forgery.
    proven: Mutex<ProvenSet>,
    /// Real-mode cache of aggregate verifications already proven valid,
    /// keyed on the full `(signer list, message, aggregate bytes)` claim —
    /// certificates are relayed and re-verified many times per execution.
    agg_proven: Mutex<AggProvenSet>,
}

/// `(signer, message, signature-bytes)` triples proven valid.
type ProvenSet = HashSet<(NodeId, Vec<u8>, [u8; 64])>;

/// `(signer list, message, aggregate-bytes)` claims proven valid.
type AggProvenSet = HashSet<(Vec<NodeId>, Vec<u8>, [u8; 64])>;

impl Keychain {
    /// Trusted setup: deterministically generates `n` key pairs.
    ///
    /// # Examples
    ///
    /// ```
    /// use ba_fmine::pki::{Keychain, SigMode};
    /// use ba_sim::NodeId;
    ///
    /// let chain = Keychain::from_seed(7, 4, SigMode::Real);
    /// let sig = chain.sign(NodeId(2), b"(Vote, r=1, b=0)");
    /// assert!(chain.verify(NodeId(2), b"(Vote, r=1, b=0)", &sig));
    /// assert!(!chain.verify(NodeId(3), b"(Vote, r=1, b=0)", &sig));
    /// ```
    pub fn from_seed(seed: u64, n: usize, mode: SigMode) -> Keychain {
        let signing_keys: Vec<SigningKey> = (0..n)
            .map(|i| {
                let mut s = Vec::with_capacity(32);
                s.extend_from_slice(b"keychain/v1/");
                s.extend_from_slice(&seed.to_be_bytes());
                s.extend_from_slice(&(i as u64).to_be_bytes());
                SigningKey::from_seed(&s)
            })
            .collect();
        let verifying_keys: Vec<VerifyingKey> =
            signing_keys.iter().map(|k| k.verifying_key()).collect();
        let mut pk_tables = Vec::new();
        if mode == SigMode::Real {
            // Trusted setup registers every public key in the process-wide
            // fixed-base table cache: single and batch verification then run
            // off precomputed windows instead of generic exponentiation.
            let group = ba_crypto::group::Group::standard();
            pk_tables = verifying_keys.iter().map(|vk| group.ensure_cached_table(&vk.0)).collect();
        }
        Keychain {
            mode,
            signing_keys,
            verifying_keys,
            _pk_tables: pk_tables,
            registry: Mutex::new(HashSet::new()),
            proven: Mutex::new(HashSet::new()),
            agg_proven: Mutex::new(HashSet::new()),
        }
    }

    /// The signature mode in force.
    pub fn mode(&self) -> SigMode {
        self.mode
    }

    /// Number of enrolled nodes.
    pub fn n(&self) -> usize {
        self.signing_keys.len()
    }

    /// The public directory (the PKI).
    pub fn verifying_keys(&self) -> &[VerifyingKey] {
        &self.verifying_keys
    }

    /// Signs `msg` as `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not enrolled.
    pub fn sign(&self, node: NodeId, msg: &[u8]) -> Sig {
        match self.mode {
            SigMode::Real => Sig::Real(self.signing_keys[node.index()].sign(msg)),
            SigMode::Ideal => {
                self.registry.lock().expect("poisoned").insert((node, msg.to_vec()));
                Sig::Ideal
            }
        }
    }

    /// Verifies that `node` signed `msg`.
    pub fn verify(&self, node: NodeId, msg: &[u8], sig: &Sig) -> bool {
        if node.index() >= self.n() {
            return false;
        }
        match (self.mode, sig) {
            (SigMode::Real, Sig::Real(s)) => {
                let key = (node, msg.to_vec(), s.to_bytes());
                if self.proven.lock().expect("poisoned").contains(&key) {
                    return true;
                }
                let ok = self.verifying_keys[node.index()].verify(msg, s);
                if ok {
                    self.proven.lock().expect("poisoned").insert(key);
                }
                ok
            }
            (SigMode::Ideal, Sig::Ideal) => {
                self.registry.lock().expect("poisoned").contains(&(node, msg.to_vec()))
            }
            _ => false, // mode/variant mismatch is a wiring bug, never valid
        }
    }

    /// Verifies a batch of `(signer, message, signature)` claims at once.
    ///
    /// In [`SigMode::Real`] this collapses to one random-linear-combination
    /// check over all Schnorr signatures ([`ba_crypto::schnorr::verify_batch`]);
    /// in [`SigMode::Ideal`] it is a registry sweep under a single lock.
    /// Returns `true` iff **every** claim verifies (up to the documented
    /// `2^-48`-per-member batch soundness in real mode); the empty batch
    /// verifies trivially.
    pub fn verify_batch(&self, items: &[(NodeId, &[u8], &Sig)]) -> bool {
        match self.mode {
            SigMode::Real => {
                let mut batch = Vec::with_capacity(items.len());
                {
                    let proven = self.proven.lock().expect("poisoned");
                    // Inboxes repeat identical claims (certificates share
                    // votes); verify each distinct triple once.
                    let mut in_batch: HashSet<(NodeId, &[u8], [u8; 64])> = HashSet::new();
                    for (node, msg, sig) in items {
                        if node.index() >= self.n() {
                            return false;
                        }
                        let Sig::Real(s) = sig else { return false };
                        if proven.contains(&(*node, msg.to_vec(), s.to_bytes()))
                            || !in_batch.insert((*node, msg, s.to_bytes()))
                        {
                            continue; // already proven or already queued
                        }
                        batch.push(ba_crypto::schnorr::BatchItem {
                            key: &self.verifying_keys[node.index()],
                            msg,
                            sig: s,
                        });
                    }
                }
                let ok = ba_crypto::schnorr::verify_batch(&batch);
                if ok {
                    let mut proven = self.proven.lock().expect("poisoned");
                    for (node, msg, sig) in items {
                        if let Sig::Real(s) = sig {
                            proven.insert((*node, msg.to_vec(), s.to_bytes()));
                        }
                    }
                }
                ok
            }
            SigMode::Ideal => {
                let registry = self.registry.lock().expect("poisoned");
                items.iter().all(|(node, msg, sig)| {
                    node.index() < self.n()
                        && matches!(sig, Sig::Ideal)
                        && registry.contains(&(*node, msg.to_vec()))
                })
            }
        }
    }

    /// Aggregates a quorum's individual signatures on the shared `msg` into
    /// one [`AggSig`]. `claims` must list signers in strictly increasing
    /// `NodeId` order (sorted, duplicate-free — the canonical bitmap order).
    ///
    /// The keychain plays the trusted co-signing service here: it **verifies
    /// every input signature first** and refuses to aggregate if any claim
    /// is invalid or substituted, so a bad input can never be laundered
    /// into a valid-looking aggregate. Returns `None` on any malformed or
    /// unverifiable input.
    pub fn aggregate(&self, claims: &[(NodeId, &Sig)], msg: &[u8]) -> Option<AggSig> {
        if claims.is_empty() || !claims.windows(2).all(|w| w[0].0 < w[1].0) {
            return None;
        }
        if claims.last().expect("non-empty").0.index() >= self.n() {
            return None;
        }
        let items: Vec<(NodeId, &[u8], &Sig)> =
            claims.iter().map(|(node, sig)| (*node, msg, *sig)).collect();
        if !self.verify_batch(&items) {
            return None;
        }
        match self.mode {
            SigMode::Real => {
                let keys: Vec<&SigningKey> =
                    claims.iter().map(|(node, _)| &self.signing_keys[node.index()]).collect();
                Some(AggSig::Real(aggregate::sign_aggregate(&keys, msg)))
            }
            SigMode::Ideal => Some(AggSig::Ideal),
        }
    }

    /// Verifies that exactly the nodes in `signers` (strictly increasing)
    /// jointly signed `msg`.
    ///
    /// Rejects structurally bad claims regardless of mode: an empty signer
    /// set, an unsorted or duplicate-bearing list (a bitmap cannot name a
    /// node twice), or an out-of-range signer. In real mode the aggregate
    /// is checked against the listed public keys via the Straus fast path
    /// (with a positive-result cache keyed on the full claim); in ideal
    /// mode every listed signer must appear in the registry for `msg`.
    pub fn verify_aggregate(&self, signers: &[NodeId], msg: &[u8], agg: &AggSig) -> bool {
        if signers.is_empty() || !signers.windows(2).all(|w| w[0] < w[1]) {
            return false;
        }
        if signers.last().expect("non-empty").index() >= self.n() {
            return false;
        }
        match (self.mode, agg) {
            (SigMode::Real, AggSig::Real(a)) => {
                let key = (signers.to_vec(), msg.to_vec(), a.to_bytes());
                if self.agg_proven.lock().expect("poisoned").contains(&key) {
                    return true;
                }
                let keys: Vec<VerifyingKey> =
                    signers.iter().map(|node| self.verifying_keys[node.index()]).collect();
                let ok = aggregate::verify_aggregate(&keys, msg, a);
                if ok {
                    self.agg_proven.lock().expect("poisoned").insert(key);
                }
                ok
            }
            (SigMode::Ideal, AggSig::Ideal) => {
                let registry = self.registry.lock().expect("poisoned");
                signers.iter().all(|node| registry.contains(&(*node, msg.to_vec())))
            }
            _ => false, // mode/variant mismatch is a wiring bug, never valid
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_mode_roundtrip() {
        let chain = Keychain::from_seed(1, 3, SigMode::Real);
        let sig = chain.sign(NodeId(0), b"hello");
        assert!(chain.verify(NodeId(0), b"hello", &sig));
        assert!(!chain.verify(NodeId(0), b"other", &sig));
        assert!(!chain.verify(NodeId(1), b"hello", &sig));
        assert!(!chain.verify(NodeId(99), b"hello", &sig));
    }

    #[test]
    fn ideal_mode_registry_semantics() {
        let chain = Keychain::from_seed(1, 3, SigMode::Ideal);
        // Verification fails for a message never signed (unforgeability).
        assert!(!chain.verify(NodeId(0), b"unsigned", &Sig::Ideal));
        let sig = chain.sign(NodeId(0), b"signed");
        assert!(chain.verify(NodeId(0), b"signed", &sig));
        // Node 1 never signed it.
        assert!(!chain.verify(NodeId(1), b"signed", &sig));
    }

    #[test]
    fn mode_mismatch_rejected() {
        let real = Keychain::from_seed(1, 2, SigMode::Real);
        let ideal = Keychain::from_seed(1, 2, SigMode::Ideal);
        let real_sig = real.sign(NodeId(0), b"m");
        let ideal_sig = ideal.sign(NodeId(0), b"m");
        assert!(!real.verify(NodeId(0), b"m", &ideal_sig));
        assert!(!ideal.verify(NodeId(0), b"m", &real_sig));
    }

    #[test]
    fn deterministic_keys_per_seed() {
        let a = Keychain::from_seed(5, 2, SigMode::Real);
        let b = Keychain::from_seed(5, 2, SigMode::Real);
        let c = Keychain::from_seed(6, 2, SigMode::Real);
        assert_eq!(a.verifying_keys()[0], b.verifying_keys()[0]);
        assert_ne!(a.verifying_keys()[0], c.verifying_keys()[0]);
    }

    #[test]
    fn sig_size_constant() {
        let chain = Keychain::from_seed(1, 1, SigMode::Ideal);
        assert_eq!(chain.sign(NodeId(0), b"m").size_bits(), SIG_BITS);
    }

    #[test]
    fn batch_matches_singles_in_both_modes() {
        for mode in [SigMode::Real, SigMode::Ideal] {
            let chain = Keychain::from_seed(7, 4, mode);
            let msgs: Vec<Vec<u8>> = (0..4).map(|i| format!("m{i}").into_bytes()).collect();
            let sigs: Vec<Sig> = (0..4).map(|i| chain.sign(NodeId(i), &msgs[i])).collect();
            let items: Vec<(NodeId, &[u8], &Sig)> =
                (0..4).map(|i| (NodeId(i), msgs[i].as_slice(), &sigs[i])).collect();
            assert!(chain.verify_batch(&items), "{mode:?}");
            assert!(chain.verify_batch(&[]), "{mode:?}: empty batch is vacuous");
            // One bad member (signature for the wrong message) sinks the batch.
            let bad = chain.sign(NodeId(2), b"other");
            let mut tampered = items.clone();
            tampered[2] = (NodeId(2), msgs[3].as_slice(), &bad);
            assert!(!chain.verify_batch(&tampered), "{mode:?}");
            // And an out-of-range signer is rejected outright.
            let oob = vec![(NodeId(99), msgs[0].as_slice(), &sigs[0])];
            assert!(!chain.verify_batch(&oob), "{mode:?}");
        }
    }

    #[test]
    fn aggregate_roundtrip_in_both_modes() {
        for mode in [SigMode::Real, SigMode::Ideal] {
            let chain = Keychain::from_seed(3, 5, mode);
            let msg = b"(Vote, iter=1, bit=0)";
            let sigs: Vec<Sig> = (0..4).map(|i| chain.sign(NodeId(i), msg)).collect();
            let claims: Vec<(NodeId, &Sig)> = (0..4).map(|i| (NodeId(i), &sigs[i])).collect();
            let agg = chain.aggregate(&claims, msg).expect("valid quorum aggregates");
            assert_eq!(agg.size_bits(), AGG_SIG_BITS, "{mode:?}");
            let signers: Vec<NodeId> = (0..4).map(NodeId).collect();
            assert!(chain.verify_aggregate(&signers, msg, &agg), "{mode:?}");
            // Twice: the second hit exercises the real-mode proven cache.
            assert!(chain.verify_aggregate(&signers, msg, &agg), "{mode:?}");
            assert!(!chain.verify_aggregate(&signers, b"other", &agg), "{mode:?}");
        }
    }

    #[test]
    fn aggregate_refuses_invalid_or_substituted_input() {
        for mode in [SigMode::Real, SigMode::Ideal] {
            let chain = Keychain::from_seed(4, 4, mode);
            let msg = b"stmt";
            // Nodes 0 and 2 sign the statement; node 1 signs something else.
            let s0 = chain.sign(NodeId(0), msg);
            let s2 = chain.sign(NodeId(2), msg);
            let substituted = chain.sign(NodeId(1), b"other-stmt");
            // Node 1's slot carries a signature on a different statement.
            // The ceremony must screen it out, not launder it.
            let claims = [(NodeId(0), &s0), (NodeId(1), &substituted), (NodeId(2), &s2)];
            assert!(chain.aggregate(&claims, msg).is_none(), "{mode:?}");
        }
        // Wrong-signer substitution (node 2's signature presented as node
        // 1's) is a real-mode concern: an ideal `Sig` carries no bytes, so
        // the claim "node 1 signed msg" is judged purely by the registry.
        let chain = Keychain::from_seed(4, 4, SigMode::Real);
        let msg = b"stmt";
        let sigs: Vec<Sig> = (0..3).map(|i| chain.sign(NodeId(i), msg)).collect();
        let claims = [(NodeId(0), &sigs[0]), (NodeId(1), &sigs[2]), (NodeId(2), &sigs[2])];
        assert!(chain.aggregate(&claims, msg).is_none());
    }

    #[test]
    fn aggregate_requires_strictly_increasing_signers() {
        for mode in [SigMode::Real, SigMode::Ideal] {
            let chain = Keychain::from_seed(5, 4, mode);
            let msg = b"stmt";
            let sigs: Vec<Sig> = (0..3).map(|i| chain.sign(NodeId(i), msg)).collect();
            let dup = [(NodeId(1), &sigs[1]), (NodeId(1), &sigs[1])];
            assert!(chain.aggregate(&dup, msg).is_none(), "{mode:?}: duplicate");
            let unsorted = [(NodeId(2), &sigs[2]), (NodeId(0), &sigs[0])];
            assert!(chain.aggregate(&unsorted, msg).is_none(), "{mode:?}: unsorted");
            assert!(chain.aggregate(&[], msg).is_none(), "{mode:?}: empty");
        }
    }

    #[test]
    fn verify_aggregate_rejects_bad_signer_lists() {
        for mode in [SigMode::Real, SigMode::Ideal] {
            let chain = Keychain::from_seed(6, 4, mode);
            let msg = b"stmt";
            let sigs: Vec<Sig> = (0..3).map(|i| chain.sign(NodeId(i), msg)).collect();
            let claims: Vec<(NodeId, &Sig)> = (0..3).map(|i| (NodeId(i), &sigs[i])).collect();
            let agg = chain.aggregate(&claims, msg).expect("valid quorum");
            // Bitmap inflation: claiming a signer who never signed.
            assert!(
                !chain.verify_aggregate(&[NodeId(0), NodeId(1), NodeId(2), NodeId(3)], msg, &agg),
                "{mode:?}: inflated bitmap"
            );
            // Duplicate and unsorted bitmaps are structurally invalid.
            assert!(
                !chain.verify_aggregate(&[NodeId(0), NodeId(1), NodeId(1)], msg, &agg),
                "{mode:?}: duplicate signer"
            );
            assert!(
                !chain.verify_aggregate(&[NodeId(1), NodeId(0), NodeId(2)], msg, &agg),
                "{mode:?}: unsorted"
            );
            // A deflated signer set binds a different key list — rejected
            // in real mode. (The ideal functionality accepts it: "nodes 0
            // and 1 signed msg" is a true statement in the registry.)
            if mode == SigMode::Real {
                assert!(!chain.verify_aggregate(&[NodeId(0), NodeId(1)], msg, &agg), "subset");
            }
            // Out-of-range signer.
            assert!(
                !chain.verify_aggregate(&[NodeId(0), NodeId(99)], msg, &agg),
                "{mode:?}: out of range"
            );
            assert!(!chain.verify_aggregate(&[], msg, &agg), "{mode:?}: empty");
        }
    }

    #[test]
    fn aggregate_mode_mismatch_rejected() {
        let real = Keychain::from_seed(7, 2, SigMode::Real);
        let ideal = Keychain::from_seed(7, 2, SigMode::Ideal);
        let msg = b"m";
        let rsigs: Vec<Sig> = (0..2).map(|i| real.sign(NodeId(i), msg)).collect();
        let isigs: Vec<Sig> = (0..2).map(|i| ideal.sign(NodeId(i), msg)).collect();
        let ragg = real
            .aggregate(&[(NodeId(0), &rsigs[0]), (NodeId(1), &rsigs[1])], msg)
            .expect("real aggregate");
        let iagg = ideal
            .aggregate(&[(NodeId(0), &isigs[0]), (NodeId(1), &isigs[1])], msg)
            .expect("ideal aggregate");
        let signers = [NodeId(0), NodeId(1)];
        assert!(!real.verify_aggregate(&signers, msg, &iagg));
        assert!(!ideal.verify_aggregate(&signers, msg, &ragg));
    }

    #[test]
    fn cached_aggregate_still_rejects_tampered_aggregate() {
        let chain = Keychain::from_seed(8, 3, SigMode::Real);
        let msg = b"stmt";
        let sigs: Vec<Sig> = (0..3).map(|i| chain.sign(NodeId(i), msg)).collect();
        let claims: Vec<(NodeId, &Sig)> = (0..3).map(|i| (NodeId(i), &sigs[i])).collect();
        let agg = chain.aggregate(&claims, msg).expect("valid quorum");
        let signers = [NodeId(0), NodeId(1), NodeId(2)];
        assert!(chain.verify_aggregate(&signers, msg, &agg), "prime the cache");
        let AggSig::Real(real) = agg else { unreachable!() };
        let g = ba_crypto::group::Group::standard();
        let forged = AggSig::Real(ba_crypto::aggregate::AggregateSignature {
            r: real.r,
            s: g.scalar_add(&real.s, &g.scalar_from_u64(1)),
        });
        assert!(!chain.verify_aggregate(&signers, msg, &forged));
    }

    #[test]
    fn cached_verification_still_rejects_tampered_sig() {
        // A positive cache entry for (node, msg, sig) must not leak to a
        // different signature over the same statement.
        let chain = Keychain::from_seed(9, 2, SigMode::Real);
        let sig = chain.sign(NodeId(0), b"stmt");
        assert!(chain.verify(NodeId(0), b"stmt", &sig));
        assert!(chain.verify(NodeId(0), b"stmt", &sig), "cache hit stays valid");
        let Sig::Real(real) = sig else { unreachable!() };
        let g = ba_crypto::group::Group::standard();
        let forged = Sig::Real(ba_crypto::schnorr::Signature {
            r: real.r,
            s: g.scalar_add(&real.s, &g.scalar_from_u64(1)),
        });
        assert!(!chain.verify(NodeId(0), b"stmt", &forged));
    }
}
