//! The eligibility-election interface shared by the ideal functionality and
//! the real-world VRF compiler.

use ba_crypto::vrf::VrfOutput;
use ba_sim::NodeId;

use crate::tag::MineTag;

/// Evidence that a node successfully mined a tag.
///
/// `Ideal` tickets stand in for the proof `F_mine.verify` would vouch for;
/// `Real` tickets carry the actual VRF evaluation. Both report the **same**
/// wire size so communication metrics are comparable between hybrid and
/// real-world executions (experiment E9).
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Ticket {
    /// Hybrid-world ticket: validity is vouched for by `F_mine.verify`.
    Ideal,
    /// Real-world ticket: the VRF output plus its DLEQ proof.
    Real(VrfOutput),
}

/// Nominal wire size of an eligibility proof: `gamma` (256 bits) plus the
/// DLEQ proof `(a1, a2, s)` (3 x 256 bits).
pub const TICKET_BITS: usize = 4 * 256;

impl Ticket {
    /// Wire size in bits (identical across variants by design).
    pub fn size_bits(&self) -> usize {
        TICKET_BITS
    }
}

/// Eligibility election: the paper's `F_mine` interface (Figure 1).
///
/// * [`Eligibility::mine`] — node `i`'s private attempt to mine `m`; returns
///   a ticket on success. Repeated attempts are idempotent (the functionality
///   stores its coins).
/// * [`Eligibility::verify`] — public verification that `i` mined `m`.
///
/// **Secrecy discipline**: the functionality answers `mine` for any node id;
/// honesty of *who calls it for whom* is the simulation's responsibility
/// (honest nodes mine only for themselves; adversaries only for corrupt
/// nodes). This mirrors the ITM formulation, where the interface itself is
/// available to every party.
pub trait Eligibility: Send + Sync {
    /// Attempts to mine `tag` as `node`. Deterministic and idempotent.
    fn mine(&self, node: NodeId, tag: &MineTag) -> Option<Ticket>;

    /// Side-effect-free eligibility probe: whether [`Eligibility::mine`]
    /// *would* succeed for `(node, tag)` — without recording a Figure-1
    /// mining attempt and without constructing a ticket.
    ///
    /// This is the sparse-population engine's activation oracle: it asks the
    /// question for every node without perturbing the functionality's
    /// observable state (`verify` for a never-attempted tag must keep
    /// returning `0`, exactly as if the probe never happened).
    fn would_mine(&self, node: NodeId, tag: &MineTag) -> bool;

    /// Verifies a claimed ticket.
    fn verify(&self, node: NodeId, tag: &MineTag, ticket: &Ticket) -> bool;

    /// Verifies a batch of eligibility claims at once; `true` iff every
    /// claim verifies (the empty batch verifies trivially).
    ///
    /// The default iterates [`Eligibility::verify`]; the real-world VRF
    /// backend overrides it with random-linear-combination batch
    /// verification of all DLEQ proofs (up to `2^-48` soundness slack per
    /// member — see `ba_crypto::schnorr::verify_batch`).
    fn verify_batch(&self, items: &[(NodeId, &MineTag, &Ticket)]) -> bool {
        items.iter().all(|(node, tag, ticket)| self.verify(*node, tag, ticket))
    }

    /// Whether [`Eligibility::verify_batch`] is genuinely cheaper than
    /// per-item verification (i.e. this backend has a real batch fast
    /// path). Callers use this to decide whether an up-front batch pass
    /// over an inbox pays for itself.
    fn supports_batch(&self) -> bool {
        false
    }

    /// The expected committee size `λ` (for quorum computation).
    fn lambda(&self) -> f64;

    /// The number of nodes `n`.
    fn n(&self) -> usize;
}

/// An [`Eligibility`] wrapper whose `mine` always fails — the backend the
/// sparse-population engine hands its *ghost* instances (stand-ins for the
/// silent majority).
///
/// A ghost must trace exactly the state trajectory of a node that never
/// wins an election: `mine`/`would_mine` return failure **without
/// delegating** (delegation would record Figure-1 attempts under an id the
/// real execution never mined for, perturbing the shared functionality),
/// while verification and parameters delegate unchanged so the ghost
/// processes its inbox exactly like a live node.
pub struct NeverMine(pub std::sync::Arc<dyn Eligibility>);

impl Eligibility for NeverMine {
    fn mine(&self, _node: NodeId, _tag: &MineTag) -> Option<Ticket> {
        None
    }

    fn would_mine(&self, _node: NodeId, _tag: &MineTag) -> bool {
        false
    }

    fn verify(&self, node: NodeId, tag: &MineTag, ticket: &Ticket) -> bool {
        self.0.verify(node, tag, ticket)
    }

    fn verify_batch(&self, items: &[(NodeId, &MineTag, &Ticket)]) -> bool {
        self.0.verify_batch(items)
    }

    fn supports_batch(&self) -> bool {
        self.0.supports_batch()
    }

    fn lambda(&self) -> f64 {
        self.0.lambda()
    }

    fn n(&self) -> usize {
        self.0.n()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticket_sizes_match_across_variants() {
        use ba_crypto::vrf::VrfSecretKey;
        let ideal = Ticket::Ideal;
        let real = Ticket::Real(VrfSecretKey::from_seed(b"k").evaluate(b"m"));
        assert_eq!(ideal.size_bits(), real.size_bits());
        assert_eq!(ideal.size_bits(), TICKET_BITS);
    }
}
