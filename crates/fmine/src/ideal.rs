//! The `F_mine` ideal functionality, verbatim from Figure 1 of the paper:
//!
//! ```text
//! F_mine(1^κ, P)
//!   On receive mine(m) from node i for the first time:
//!       Coin[m, i] := Bernoulli(P(m)); return Coin[m, i].
//!   On receive verify(m, i):
//!       if mine(m) has been called by node i, return Coin[m, i]; else return 0.
//! ```
//!
//! The Bernoulli coins are drawn from a deterministic DRBG keyed by the
//! execution seed and the pair `(i, m)`, so executions replay exactly; the
//! *"else return 0"* branch is preserved faithfully — a ticket for a tag the
//! node never attempted does **not** verify, which is precisely what stops
//! corrupt nodes from fabricating other nodes' votes in the hybrid world.

use std::collections::HashMap;
use std::sync::Mutex;

use ba_crypto::hmac::HmacDrbg;
use ba_sim::NodeId;

use crate::eligibility::{Eligibility, Ticket};
use crate::params::MineParams;
use crate::tag::MineTag;

/// The hybrid-world mining functionality.
///
/// # Examples
///
/// ```
/// use ba_fmine::ideal::IdealMine;
/// use ba_fmine::params::MineParams;
/// use ba_fmine::tag::{MineTag, MsgKind};
/// use ba_fmine::eligibility::Eligibility;
/// use ba_sim::NodeId;
///
/// let fmine = IdealMine::new(7, MineParams::new(64, 16.0));
/// let tag = MineTag::new(MsgKind::Vote, 0, true);
/// // Some nodes are eligible, some are not — deterministically per seed.
/// let committee: Vec<_> = (0..64)
///     .filter(|&i| fmine.mine(NodeId(i), &tag).is_some())
///     .collect();
/// // Expected size 16; the seed fixes the exact set.
/// assert!(!committee.is_empty());
/// ```
#[derive(Debug)]
pub struct IdealMine {
    seed: u64,
    params: MineParams,
    /// `Coin[m, i]` for every attempted `mine`, per Figure 1.
    coins: Mutex<HashMap<(NodeId, MineTag), bool>>,
}

impl IdealMine {
    /// Creates the functionality for one execution.
    pub fn new(seed: u64, params: MineParams) -> IdealMine {
        IdealMine { seed, params, coins: Mutex::new(HashMap::new()) }
    }

    /// The underlying Bernoulli coin for `(node, tag)` — deterministic in
    /// `(seed, node, tag)`.
    fn flip(&self, node: NodeId, tag: &MineTag) -> bool {
        let mut drbg = HmacDrbg::new(&self.seed.to_be_bytes(), b"fmine-coin/v1");
        // Key the stream by (node, tag) through the domain input: draw one
        // u64 from a DRBG whose domain encodes both.
        let mut material = Vec::with_capacity(32);
        material.extend_from_slice(&(node.index() as u64).to_be_bytes());
        material.extend_from_slice(&tag.to_bytes());
        // Re-key with the material for full independence across pairs.
        let mut keyed = HmacDrbg::new(&drbg.next_bytes32(), &material);
        keyed.next_u64() < self.params.threshold(tag)
    }

    /// Number of distinct `mine` attempts recorded so far.
    pub fn attempts(&self) -> usize {
        self.coins.lock().expect("poisoned").len()
    }
}

impl Eligibility for IdealMine {
    fn mine(&self, node: NodeId, tag: &MineTag) -> Option<Ticket> {
        let mut coins = self.coins.lock().expect("poisoned");
        let coin = *coins.entry((node, *tag)).or_insert_with(|| self.flip(node, tag));
        coin.then_some(Ticket::Ideal)
    }

    fn would_mine(&self, node: NodeId, tag: &MineTag) -> bool {
        // The pure Bernoulli coin, *without* the Figure-1 bookkeeping:
        // `verify` for a never-attempted `(node, tag)` keeps returning 0.
        self.flip(node, tag)
    }

    fn verify(&self, node: NodeId, tag: &MineTag, ticket: &Ticket) -> bool {
        if !matches!(ticket, Ticket::Ideal) {
            return false; // a real-world ticket means a protocol wiring bug
        }
        let coins = self.coins.lock().expect("poisoned");
        // Figure 1: "if mine(m) has been called by node i, return Coin[m,i];
        // else return 0."
        *coins.get(&(node, *tag)).unwrap_or(&false)
    }

    fn lambda(&self) -> f64 {
        self.params.lambda
    }

    fn n(&self) -> usize {
        self.params.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tag::MsgKind;

    fn vote_tag(iter: u64, bit: bool) -> MineTag {
        MineTag::new(MsgKind::Vote, iter, bit)
    }

    #[test]
    fn mine_is_idempotent() {
        let f = IdealMine::new(1, MineParams::new(32, 8.0));
        let tag = vote_tag(0, true);
        for i in 0..32 {
            let a = f.mine(NodeId(i), &tag);
            let b = f.mine(NodeId(i), &tag);
            assert_eq!(a, b);
        }
        assert_eq!(f.attempts(), 32);
    }

    #[test]
    fn verify_before_mine_returns_false() {
        // Figure 1's "else return 0" branch: the functionality does not
        // confirm eligibility the node never claimed.
        let f = IdealMine::new(1, MineParams::new(32, 32.0)); // prob 1: all eligible
        let tag = vote_tag(0, true);
        assert!(!f.verify(NodeId(3), &tag, &Ticket::Ideal));
        assert!(f.mine(NodeId(3), &tag).is_some());
        assert!(f.verify(NodeId(3), &tag, &Ticket::Ideal));
    }

    #[test]
    fn would_mine_matches_mine_without_recording_attempts() {
        let f = IdealMine::new(6, MineParams::new(64, 16.0));
        let tag = vote_tag(2, true);
        let probed: Vec<bool> = (0..64).map(|i| f.would_mine(NodeId(i), &tag)).collect();
        // The probe left no Figure-1 attempts behind: verify still says 0.
        assert_eq!(f.attempts(), 0);
        assert!((0..64).all(|i| !f.verify(NodeId(i), &tag, &Ticket::Ideal)));
        let mined: Vec<bool> = (0..64).map(|i| f.mine(NodeId(i), &tag).is_some()).collect();
        assert_eq!(probed, mined);
        assert_eq!(f.attempts(), 64);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = IdealMine::new(9, MineParams::new(64, 16.0));
        let b = IdealMine::new(9, MineParams::new(64, 16.0));
        let c = IdealMine::new(10, MineParams::new(64, 16.0));
        let tag = vote_tag(5, false);
        let set = |f: &IdealMine| -> Vec<usize> {
            (0..64).filter(|&i| f.mine(NodeId(i), &tag).is_some()).collect()
        };
        assert_eq!(set(&a), set(&b));
        assert_ne!(set(&a), set(&c), "different seeds should give different committees");
    }

    #[test]
    fn committee_sizes_concentrate_around_lambda() {
        let f = IdealMine::new(123, MineParams::new(200, 40.0));
        let mut sizes = Vec::new();
        for iter in 0..50 {
            let tag = vote_tag(iter, true);
            let size = (0..200).filter(|&i| f.mine(NodeId(i), &tag).is_some()).count();
            sizes.push(size);
        }
        let mean = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
        assert!((25.0..=55.0).contains(&mean), "mean committee size {mean} too far from lambda=40");
    }

    #[test]
    fn bit_specific_committees_are_independent() {
        // The §3.2 insight: committee(b=0) and committee(b=1) are unrelated.
        let f = IdealMine::new(77, MineParams::new(128, 64.0));
        let c0: Vec<usize> =
            (0..128).filter(|&i| f.mine(NodeId(i), &vote_tag(0, false)).is_some()).collect();
        let c1: Vec<usize> =
            (0..128).filter(|&i| f.mine(NodeId(i), &vote_tag(0, true)).is_some()).collect();
        assert_ne!(c0, c1);
    }

    #[test]
    fn propose_is_rarer_than_vote() {
        let f = IdealMine::new(42, MineParams::new(100, 30.0));
        let mut proposers = 0;
        let mut voters = 0;
        for iter in 0..100 {
            for i in 0..100 {
                if f.mine(NodeId(i), &MineTag::new(MsgKind::Propose, iter, true)).is_some() {
                    proposers += 1;
                }
                if f.mine(NodeId(i), &vote_tag(iter, true)).is_some() {
                    voters += 1;
                }
            }
        }
        // Expected: proposers ~ 100*100/200 = 50, voters ~ 100*100*0.3 = 3000.
        assert!(proposers < 200, "proposers = {proposers}");
        assert!(voters > 2000, "voters = {voters}");
    }

    #[test]
    fn real_ticket_rejected_by_ideal_functionality() {
        use ba_crypto::vrf::VrfSecretKey;
        let f = IdealMine::new(5, MineParams::new(16, 16.0));
        let tag = vote_tag(0, true);
        f.mine(NodeId(0), &tag);
        let real = Ticket::Real(VrfSecretKey::from_seed(b"x").evaluate(b"y"));
        assert!(!f.verify(NodeId(0), &tag, &real));
    }
}
