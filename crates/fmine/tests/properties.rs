//! Property-based tests for the eligibility layer.

use ba_fmine::{
    probability_to_threshold, Eligibility, IdealMine, MineParams, MineTag, MsgKind, RealMine,
    Ticket,
};
use ba_sim::NodeId;
use proptest::prelude::*;

fn arb_vote_tag() -> impl Strategy<Value = MineTag> {
    (any::<u64>(), any::<bool>()).prop_map(|(iter, bit)| MineTag::new(MsgKind::Vote, iter, bit))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn threshold_is_monotone(p1 in 0.0f64..1.0, p2 in 0.0f64..1.0) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        prop_assert!(probability_to_threshold(lo) <= probability_to_threshold(hi));
    }

    #[test]
    fn ideal_mine_is_idempotent_and_verify_consistent(
        seed in any::<u64>(),
        node in 0usize..64,
        tag in arb_vote_tag(),
    ) {
        let fmine = IdealMine::new(seed, MineParams::new(64, 16.0));
        let first = fmine.mine(NodeId(node), &tag);
        let second = fmine.mine(NodeId(node), &tag);
        prop_assert_eq!(&first, &second);
        // Figure 1: after mining, verify returns the coin.
        prop_assert_eq!(
            fmine.verify(NodeId(node), &tag, &Ticket::Ideal),
            first.is_some()
        );
    }

    #[test]
    fn ideal_verify_false_before_mine(
        seed in any::<u64>(),
        node in 0usize..64,
        tag in arb_vote_tag(),
    ) {
        let fmine = IdealMine::new(seed, MineParams::new(64, 64.0)); // prob 1
        prop_assert!(!fmine.verify(NodeId(node), &tag, &Ticket::Ideal));
    }

    #[test]
    fn propose_probability_half_per_iteration(seed in any::<u64>()) {
        // Over n nodes attempting one propose each, expected successes = 1/2;
        // over 40 iterations expect ~20, loosely bounded here.
        let n = 64;
        let fmine = IdealMine::new(seed, MineParams::new(n, 16.0));
        let mut successes = 0;
        for iter in 0..40u64 {
            for i in 0..n {
                if fmine
                    .mine(NodeId(i), &MineTag::new(MsgKind::Propose, iter, i % 2 == 0))
                    .is_some()
                {
                    successes += 1;
                }
            }
        }
        prop_assert!((2..=60).contains(&successes), "successes={successes}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn real_mine_tickets_always_verify_for_their_context(
        seed in any::<u64>(),
        iter in 0u64..8,
        bit in any::<bool>(),
    ) {
        let n = 12;
        let fmine = RealMine::from_seed(seed, MineParams::new(n, 12.0)); // prob 1
        let tag = MineTag::new(MsgKind::Vote, iter, bit);
        for i in 0..n {
            let ticket = fmine.mine(NodeId(i), &tag).expect("probability 1");
            prop_assert!(fmine.verify(NodeId(i), &tag, &ticket));
            // Never transferable to the other bit or a different node.
            let other = MineTag::new(MsgKind::Vote, iter, !bit);
            prop_assert!(!fmine.verify(NodeId(i), &other, &ticket));
            prop_assert!(!fmine.verify(NodeId((i + 1) % n), &tag, &ticket));
        }
    }
}
