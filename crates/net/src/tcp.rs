//! Real TCP loopback delivery with one reader task per node.
//!
//! # Topology
//!
//! A star over `127.0.0.1`: the transport binds an ephemeral loopback
//! listener and opens one connection per node. The engine side holds every
//! connection's write half; each node's read half is owned by a dedicated
//! **node task** — a `std::thread` that blocks on the socket, timestamps
//! each frame the moment it is fully read, and reports the arrival over an
//! in-process channel. Protocol stepping stays in the (sans-I/O) engine;
//! the node tasks are the I/O half of each node.
//!
//! # What crosses the wire
//!
//! One frame per `(message, receiver)` copy: a 16-byte header (sequence
//! number + payload length + CRC-32 of the first 12 bytes) followed by
//! `ceil(size_bits / 8)` payload bytes (capped at 1 MiB), so bandwidth on
//! the loopback device scales with the protocol's real bit complexity. The
//! typed payload itself does not need a serialization format — it crosses
//! via an `Arc` side table keyed by the sequence number, which is also what
//! keeps this backend protocol-agnostic.
//!
//! # Failure semantics
//!
//! A peer connection dying mid-round is survivable: the reader task
//! reports a structured peer-down event (clean close, mid-frame EOF, CRC
//! mismatch, or I/O error — it never panics), and the transport
//! reconnects with bounded backoff, respawns the reader, and resends
//! every frame the dead connection had not delivered (sequence numbers
//! deduplicate the race where a frame arrived just as the connection
//! died). When the network is genuinely gone — the listener is sealed,
//! every backoff attempt fails, or a perpetually dying peer exhausts the
//! lifetime reconnect budget — the transport raises a structured
//! [`TransportError`] via `std::panic::panic_any` instead of hanging or
//! losing the detail, so a supervising layer can `catch_unwind` +
//! `downcast` it into a quarantined cell error.
//!
//! # Timing semantics
//!
//! Pacing is still round-based: `deliver` blocks until every copy submitted
//! for the previous round has physically arrived, then hands them to
//! inboxes in send order. Verdicts, bit counts, and rounds are therefore
//! **identical to lockstep** — what this backend adds is genuine wall-clock
//! measurement: per-copy delay (write-to-read through the kernel) and
//! per-round completion times, which surface as the report's latency
//! observables. Those numbers are real and hence *not* deterministic; CI
//! compares them with `ba-bench diff --ignore-observable 'latency_*'`.

use std::collections::BTreeMap;
use std::io::{self, BufWriter, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ba_sim::ids::{NodeId, Round};
use ba_sim::message::{Envelope, Incoming, Message, Recipient};
use ba_sim::transport::{Transport, TransportError, TransportStats};

/// Sequence + payload length + CRC-32 of the preceding 12 bytes, all
/// little-endian.
const HEADER_BYTES: usize = 16;
/// Ceiling on per-copy payload bytes pushed through the socket (a guard for
/// pathological message sizes; the byte count is still metered from
/// `size_bits` upstream).
const MAX_PAYLOAD_BYTES: usize = 1 << 20;
/// How long `deliver` waits for any single arrival before declaring the
/// loopback wedged.
const ARRIVAL_TIMEOUT: Duration = Duration::from_secs(30);
/// Backoff schedule for re-establishing a dead peer connection; when the
/// last attempt fails the transport raises a [`TransportError`].
const RECONNECT_BACKOFF_MS: [u64; 3] = [1, 10, 50];
/// Default ceiling on *total* successful reconnections over the transport's
/// lifetime. Each incident's backoff is bounded above, but a peer that dies
/// again after every recovery would otherwise cycle
/// sever → reconnect → sever forever — each success resets the arrival
/// watchdog, so the run spins past it without ever surfacing an error.
/// Exceeding the budget raises a structured [`TransportError`] instead
/// (tune per transport via [`TcpTransport::with_reconnect_budget`]).
const DEFAULT_RECONNECT_BUDGET: u64 = 16;

/// CRC-32 (IEEE 802.3, reflected polynomial) over `data` — bitwise, no
/// table; headers are 12 bytes so throughput is irrelevant.
fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in data {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// What a node task reports back to the engine side.
enum NetEvent {
    /// A frame was fully read off the socket.
    Arrival { seq: u64, at: Instant },
    /// The connection is unusable; `gen` identifies which incarnation of
    /// the node's connection died (reconnects bump it, so stale reports
    /// from an already-replaced reader are ignored).
    PeerDown { node: usize, gen: u64, detail: String },
}

/// A copy written to the wire and not yet handed to an inbox.
struct Outstanding<M> {
    receiver: usize,
    from: NodeId,
    msg: Arc<M>,
    sent_at: Instant,
    payload_len: usize,
}

/// See the [module docs](self).
pub struct TcpTransport<M> {
    /// Kept open so dead peer connections can be re-accepted; [`Self::seal`]
    /// drops it to make peer death unrecoverable (test hook).
    listener: Option<TcpListener>,
    addr: SocketAddr,
    writers: Vec<BufWriter<TcpStream>>,
    readers: Vec<std::thread::JoinHandle<()>>,
    /// Connection generation per node; bumped by every reconnect.
    gens: Vec<u64>,
    events: mpsc::Receiver<NetEvent>,
    events_tx: mpsc::Sender<NetEvent>,
    /// Peer-down reports observed while draining the channel outside
    /// `deliver` (e.g. during a recovery resend), replayed before waiting.
    pending_down: Vec<(usize, u64, String)>,
    started: Instant,
    next_seq: u64,
    /// Keyed by sequence number (= send order) so delivery drains
    /// deterministically even though arrivals race.
    outstanding: BTreeMap<u64, Outstanding<M>>,
    /// Arrival timestamps keyed by sequence number (persists across the
    /// deliver loop so a recovery can tell delivered frames from lost ones).
    arrived: BTreeMap<u64, Instant>,
    reconnects: u64,
    /// Lifetime ceiling on successful reconnections (see
    /// [`DEFAULT_RECONNECT_BUDGET`]).
    reconnect_budget: u64,
    delivered_ms: Vec<f64>,
    round_end_ms: Vec<f64>,
}

impl<M> TcpTransport<M> {
    /// Binds the loopback star for an `n`-node population and spawns the
    /// `n` node tasks.
    pub fn new(n: usize) -> io::Result<TcpTransport<M>> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let (events_tx, events) = mpsc::channel::<NetEvent>();
        let mut writers = Vec::with_capacity(n);
        let mut readers = Vec::with_capacity(n);
        for node in 0..n {
            // Sequential connect-then-accept on one thread: the accepted
            // stream is this node's peer.
            let writer = TcpStream::connect(addr)?;
            writer.set_nodelay(true)?;
            let (reader, _) = listener.accept()?;
            reader.set_nodelay(true)?;
            let tx = events_tx.clone();
            readers.push(
                std::thread::Builder::new()
                    .name(format!("ba-net-node-{node}"))
                    .spawn(move || node_task(node, 0, reader, tx))?,
            );
            writers.push(BufWriter::new(writer));
        }
        Ok(TcpTransport {
            listener: Some(listener),
            addr,
            writers,
            readers,
            gens: vec![0; n],
            events,
            events_tx,
            pending_down: Vec::new(),
            started: Instant::now(),
            next_seq: 0,
            outstanding: BTreeMap::new(),
            arrived: BTreeMap::new(),
            reconnects: 0,
            reconnect_budget: DEFAULT_RECONNECT_BUDGET,
            delivered_ms: Vec::new(),
            round_end_ms: Vec::new(),
        })
    }

    /// Number of reconnections performed over the transport's lifetime.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Overrides the lifetime reconnect budget (builder style). A `budget`
    /// of 0 makes any peer death immediately fatal.
    pub fn with_reconnect_budget(mut self, budget: u64) -> TcpTransport<M> {
        self.reconnect_budget = budget;
        self
    }

    /// Fault-injection hook: kills `node`'s peer connection (both
    /// directions), as if the peer died mid-round. The next write or the
    /// reader's EOF report triggers recovery.
    pub fn sever(&mut self, node: usize) {
        let _ = self.writers[node].get_ref().shutdown(Shutdown::Both);
    }

    /// Fault-injection hook: drops the listener, so a severed peer can
    /// never be re-accepted — the next recovery attempt must surface a
    /// structured [`TransportError`] instead of hanging.
    pub fn seal(&mut self) {
        self.listener = None;
    }

    /// Encodes one frame header.
    fn header(seq: u64, payload_len: usize) -> [u8; HEADER_BYTES] {
        let mut header = [0u8; HEADER_BYTES];
        header[..8].copy_from_slice(&seq.to_le_bytes());
        header[8..12].copy_from_slice(&(payload_len as u32).to_le_bytes());
        let crc = crc32(&header[..12]);
        header[12..].copy_from_slice(&crc.to_le_bytes());
        header
    }

    /// Writes one frame to `receiver`'s buffered writer.
    fn write_frame(&mut self, receiver: usize, seq: u64, payload_len: usize) -> io::Result<()> {
        let header = Self::header(seq, payload_len);
        let w = &mut self.writers[receiver];
        w.write_all(&header)?;
        // The payload bytes only need to exist on the wire; zeros carry the
        // size. io::repeat keeps this allocation-free for large messages.
        io::copy(&mut io::repeat(0).take(payload_len as u64), w)?;
        Ok(())
    }

    /// Records one copy and writes its frame; a write failure triggers
    /// recovery (which resends everything unarrived for that peer,
    /// including this frame).
    fn send_copy(&mut self, env: &Envelope<M>, receiver: usize)
    where
        M: Message,
    {
        let seq = self.next_seq;
        self.next_seq += 1;
        let payload_len = env.msg.size_bits().div_ceil(8).min(MAX_PAYLOAD_BYTES);
        self.outstanding.insert(
            seq,
            Outstanding {
                receiver,
                from: env.from,
                msg: Arc::clone(&env.msg),
                sent_at: Instant::now(),
                payload_len,
            },
        );
        if let Err(e) = self.write_frame(receiver, seq, payload_len) {
            self.recover(receiver, &format!("write failed: {e}"));
        }
    }

    /// True if some frame addressed to `node` has not arrived yet.
    fn has_unarrived(&self, node: usize) -> bool {
        self.outstanding
            .iter()
            .any(|(seq, out)| out.receiver == node && !self.arrived.contains_key(seq))
    }

    /// Absorbs every event already sitting in the channel without blocking
    /// (arrival timestamps recorded, peer-down reports queued).
    fn drain_ready_events(&mut self) {
        while let Ok(event) = self.events.try_recv() {
            match event {
                NetEvent::Arrival { seq, at } => {
                    self.arrived.insert(seq, at);
                }
                NetEvent::PeerDown { node, gen, detail } => {
                    self.pending_down.push((node, gen, detail));
                }
            }
        }
    }

    /// Re-establishes `node`'s connection with bounded backoff and resends
    /// every frame the dead connection had not delivered. Raises a
    /// structured [`TransportError`] when recovery is impossible.
    fn recover(&mut self, node: usize, why: &str)
    where
        M: Message,
    {
        // A frame may have landed just before the connection died; count it
        // delivered rather than resending it.
        self.drain_ready_events();
        if self.reconnects >= self.reconnect_budget {
            std::panic::panic_any(TransportError {
                node: Some(node),
                detail: format!(
                    "peer connection died ({why}) after the reconnect budget was spent \
                     ({} reconnections): treating the peer as permanently dead",
                    self.reconnects
                ),
            });
        }
        self.gens[node] += 1;
        let gen = self.gens[node];
        let mut last_err = String::new();
        for backoff_ms in RECONNECT_BACKOFF_MS {
            std::thread::sleep(Duration::from_millis(backoff_ms));
            let Some(listener) = &self.listener else {
                last_err = "listener is gone".into();
                break;
            };
            let attempt = (|| -> io::Result<(TcpStream, TcpStream)> {
                let writer = TcpStream::connect(self.addr)?;
                writer.set_nodelay(true)?;
                let (reader, _) = listener.accept()?;
                reader.set_nodelay(true)?;
                Ok((writer, reader))
            })();
            let (writer, reader) = match attempt {
                Ok(pair) => pair,
                Err(e) => {
                    last_err = e.to_string();
                    continue;
                }
            };
            let tx = self.events_tx.clone();
            let spawned = std::thread::Builder::new()
                .name(format!("ba-net-node-{node}-g{gen}"))
                .spawn(move || node_task(node, gen, reader, tx));
            match spawned {
                Ok(handle) => self.readers.push(handle),
                Err(e) => {
                    last_err = e.to_string();
                    continue;
                }
            }
            self.writers[node] = BufWriter::new(writer);
            // Resend everything the dead connection swallowed.
            let resend: Vec<(u64, usize)> = self
                .outstanding
                .iter()
                .filter(|(seq, out)| out.receiver == node && !self.arrived.contains_key(seq))
                .map(|(seq, out)| (*seq, out.payload_len))
                .collect();
            let result = (|| -> io::Result<()> {
                for (seq, payload_len) in resend {
                    self.write_frame(node, seq, payload_len)?;
                }
                self.writers[node].flush()
            })();
            match result {
                Ok(()) => {
                    self.reconnects += 1;
                    return;
                }
                Err(e) => last_err = e.to_string(),
            }
        }
        std::panic::panic_any(TransportError {
            node: Some(node),
            detail: format!("peer connection died ({why}) and could not be restored: {last_err}"),
        });
    }
}

/// The per-node I/O task: block on the socket, verify each header's CRC,
/// timestamp each fully-read frame, report it. Never panics — every
/// failure shape becomes a structured peer-down event, and a clean close
/// at a frame boundary reports as `connection closed` (which the engine
/// side ignores unless frames are missing).
fn node_task(node: usize, gen: u64, mut stream: TcpStream, tx: mpsc::Sender<NetEvent>) {
    let mut header = [0u8; HEADER_BYTES];
    let mut scratch = vec![0u8; 64 * 1024];
    let down = |detail: String| NetEvent::PeerDown { node, gen, detail };
    loop {
        match read_exact_or_eof(&mut stream, &mut header) {
            ReadOutcome::CleanEof => {
                let _ = tx.send(down("connection closed".into()));
                return;
            }
            ReadOutcome::Failed(detail) => {
                let _ = tx.send(down(detail));
                return;
            }
            ReadOutcome::Filled => {}
        }
        let claimed = u32::from_le_bytes(header[12..].try_into().expect("4 crc bytes"));
        if claimed != crc32(&header[..12]) {
            let _ = tx.send(down("frame header failed its CRC check".into()));
            return;
        }
        let seq = u64::from_le_bytes(header[..8].try_into().expect("8 header bytes"));
        let mut remaining =
            u32::from_le_bytes(header[8..12].try_into().expect("4 header bytes")) as usize;
        while remaining > 0 {
            let take = remaining.min(scratch.len());
            if let Err(e) = stream.read_exact(&mut scratch[..take]) {
                let _ = tx.send(down(format!("frame payload read failed: {e}")));
                return;
            }
            remaining -= take;
        }
        if tx.send(NetEvent::Arrival { seq, at: Instant::now() }).is_err() {
            return; // transport dropped mid-flight (engine panicked)
        }
    }
}

/// Outcome of reading one full buffer off the socket.
enum ReadOutcome {
    /// The buffer was filled.
    Filled,
    /// Clean EOF before the first byte (the write half was closed at a
    /// frame boundary: normal shutdown, or a severed connection at rest).
    CleanEof,
    /// Mid-frame EOF or an I/O error.
    Failed(String),
}

fn read_exact_or_eof(stream: &mut TcpStream, buf: &mut [u8]) -> ReadOutcome {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return ReadOutcome::CleanEof,
            Ok(0) => return ReadOutcome::Failed("peer closed mid-frame".into()),
            Ok(k) => filled += k,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return ReadOutcome::Failed(format!("read failed: {e}")),
        }
    }
    ReadOutcome::Filled
}

impl<M: Message + Send + Sync> Transport<M> for TcpTransport<M> {
    fn submit(&mut self, _round: Round, envelopes: Vec<Envelope<M>>) {
        let n = self.writers.len();
        for env in envelopes {
            match env.to {
                Recipient::All => {
                    for receiver in 0..n {
                        self.send_copy(&env, receiver);
                    }
                }
                Recipient::One(target) => self.send_copy(&env, target.index()),
            }
        }
        for node in 0..n {
            if let Err(e) = self.writers[node].flush() {
                self.recover(node, &format!("flush failed: {e}"));
            }
        }
    }

    fn deliver(&mut self, _round: Round, inboxes: &mut [Vec<Incoming<M>>]) {
        // Wait for the wire to drain: every outstanding copy must land.
        loop {
            // Replay peer-down reports gathered earlier (or just drained),
            // recovering only when the dead incarnation is current and
            // actually swallowed frames.
            for (node, gen, detail) in std::mem::take(&mut self.pending_down) {
                if gen == self.gens[node] && self.has_unarrived(node) {
                    self.recover(node, &detail);
                }
            }
            if self.outstanding.keys().all(|seq| self.arrived.contains_key(seq)) {
                break;
            }
            match self.events.recv_timeout(ARRIVAL_TIMEOUT) {
                Ok(NetEvent::Arrival { seq, at }) => {
                    self.arrived.insert(seq, at);
                }
                Ok(NetEvent::PeerDown { node, gen, detail }) => {
                    self.pending_down.push((node, gen, detail));
                }
                Err(_) => std::panic::panic_any(TransportError {
                    node: None,
                    detail: format!(
                        "no loopback arrival within {}s ({} copies missing)",
                        ARRIVAL_TIMEOUT.as_secs(),
                        self.outstanding
                            .keys()
                            .filter(|seq| !self.arrived.contains_key(seq))
                            .count()
                    ),
                }),
            }
        }
        // Hand copies to inboxes in send (sequence) order — arrival order
        // raced, delivery order must not.
        for (seq, copy) in std::mem::take(&mut self.outstanding) {
            let at = self.arrived.remove(&seq).expect("every outstanding seq arrived");
            self.delivered_ms.push(at.duration_since(copy.sent_at).as_secs_f64() * 1e3);
            inboxes[copy.receiver].push(Incoming { from: copy.from, msg: copy.msg });
        }
        self.round_end_ms.push(self.started.elapsed().as_secs_f64() * 1e3);
    }

    fn in_flight(&self) -> usize {
        self.outstanding.len()
    }

    fn finish(&mut self, rounds_used: u64) -> Option<TransportStats> {
        // `deliver` ran once per executed round; trim in case the engine
        // stopped before a trailing deliver (it does not today).
        self.round_end_ms.truncate(rounds_used as usize);
        let delivered = self.delivered_ms.len() as u64;
        let mut delays = std::mem::take(&mut self.delivered_ms);
        Some(TransportStats {
            round_end_ms: std::mem::take(&mut self.round_end_ms),
            delay_p50_ms: percentile(&mut delays, 50.0),
            delay_p95_ms: percentile(&mut delays, 95.0),
            delay_p99_ms: percentile(&mut delays, 99.0),
            delivered,
            // Round pacing waits for the wire: nothing misses its round and
            // nothing is left behind.
            late_deliveries: 0,
            undelivered: self.outstanding.len() as u64,
        })
    }
}

impl<M> Drop for TcpTransport<M> {
    fn drop(&mut self) {
        // Closing the write halves EOFs every node task.
        self.writers.clear();
        for handle in self.readers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Nearest-rank percentile (q in [0, 100]) of an unsorted sample.
fn percentile(samples: &mut [f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("wall-clock delays are finite"));
    let rank = ((q / 100.0) * samples.len() as f64).ceil() as usize;
    samples[rank.clamp(1, samples.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_sim::message::MsgId;

    #[derive(Clone, Debug, PartialEq)]
    struct Blob(usize);

    impl Message for Blob {
        fn size_bits(&self) -> usize {
            self.0
        }
    }

    fn env(id: u64, from: usize, to: Recipient, bits: usize) -> Envelope<Blob> {
        Envelope {
            id: MsgId(id),
            from: NodeId(from),
            to,
            round: Round(0),
            honest_send: true,
            removed: false,
            msg: Arc::new(Blob(bits)),
        }
    }

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frames_cross_real_sockets_and_land_in_send_order() {
        let mut t: TcpTransport<Blob> = TcpTransport::new(3).expect("bind loopback");
        t.submit(
            Round(0),
            vec![
                env(0, 0, Recipient::All, 80_000), // 10 KB really crosses the wire
                env(1, 1, Recipient::One(NodeId(2)), 8),
                env(2, 2, Recipient::All, 1),
            ],
        );
        let mut inboxes = vec![Vec::new(), Vec::new(), Vec::new()];
        t.deliver(Round(1), &mut inboxes);
        let payloads =
            |i: usize| inboxes[i].iter().map(|m: &Incoming<Blob>| m.msg.0).collect::<Vec<_>>();
        assert_eq!(payloads(0), vec![80_000, 1]);
        assert_eq!(payloads(1), vec![80_000, 1]);
        assert_eq!(payloads(2), vec![80_000, 8, 1]);
        assert_eq!(t.in_flight(), 0);
        let stats = t.finish(1).expect("tcp measures wall clock");
        assert_eq!(stats.delivered, 7);
        assert_eq!(stats.undelivered, 0);
        assert!(stats.delay_p99_ms >= stats.delay_p50_ms);
        assert_eq!(stats.round_end_ms.len(), 1);
        assert!(stats.round_end_ms[0] > 0.0);
    }

    #[test]
    fn empty_round_still_stamps_a_round_end() {
        let mut t: TcpTransport<Blob> = TcpTransport::new(2).expect("bind loopback");
        t.submit(Round(0), Vec::new());
        let mut inboxes = vec![Vec::new(), Vec::new()];
        t.deliver(Round(1), &mut inboxes);
        assert!(inboxes.iter().all(|b| b.is_empty()));
        assert_eq!(t.finish(1).unwrap().delivered, 0);
    }

    #[test]
    fn reconnects_when_a_peer_connection_dies_mid_run() {
        let mut t: TcpTransport<Blob> = TcpTransport::new(3).expect("bind loopback");
        let mut inboxes = vec![Vec::new(), Vec::new(), Vec::new()];
        t.submit(Round(0), vec![env(0, 0, Recipient::All, 64)]);
        t.deliver(Round(1), &mut inboxes);
        assert_eq!(inboxes[1].len(), 1);
        // Kill node 1's connection between rounds; the next round's flush
        // hits the dead socket and must transparently re-establish it.
        t.sever(1);
        inboxes.iter_mut().for_each(Vec::clear);
        t.submit(Round(1), vec![env(1, 2, Recipient::All, 64)]);
        t.deliver(Round(2), &mut inboxes);
        assert_eq!(inboxes[1].len(), 1, "frame re-sent over the restored connection");
        assert_eq!(inboxes[0].len(), 1);
        assert_eq!(t.reconnects(), 1);
        let stats = t.finish(2).expect("tcp measures wall clock");
        assert_eq!(stats.delivered, 6);
        assert_eq!(stats.undelivered, 0);
    }

    #[test]
    fn perpetually_dying_peer_exhausts_the_reconnect_budget() {
        // Kill-and-never-restart: the peer dies again after every recovery.
        // Per-incident backoff succeeds each time (the listener stays up),
        // so without a lifetime budget this cycles forever — every success
        // resets the arrival watchdog. The budget must cut it off with a
        // structured error in bounded time.
        let mut t: TcpTransport<Blob> =
            TcpTransport::new(2).expect("bind loopback").with_reconnect_budget(2);
        let started = Instant::now();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            for round in 0..8u64 {
                t.sever(1);
                t.submit(Round(round), vec![env(round, 0, Recipient::All, 64)]);
                let mut inboxes = vec![Vec::new(), Vec::new()];
                t.deliver(Round(round + 1), &mut inboxes);
            }
        }));
        let payload = outcome.expect_err("the budget must stop the sever/reconnect cycle");
        let error = payload
            .downcast_ref::<TransportError>()
            .expect("the failure is a structured TransportError");
        assert_eq!(error.node, Some(1));
        assert!(
            error.detail.contains("reconnect budget"),
            "detail should name the exhausted budget: {}",
            error.detail
        );
        assert_eq!(t.reconnects(), 2, "exactly the budgeted reconnections happened");
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "budget exhaustion must surface in bounded time, not spin"
        );
    }

    #[test]
    fn unrecoverable_peer_death_surfaces_a_structured_error() {
        let mut t: TcpTransport<Blob> = TcpTransport::new(2).expect("bind loopback");
        t.sever(1);
        t.seal();
        let started = Instant::now();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            t.submit(Round(0), vec![env(0, 0, Recipient::All, 64)]);
            let mut inboxes = vec![Vec::new(), Vec::new()];
            t.deliver(Round(1), &mut inboxes);
        }));
        let payload = outcome.expect_err("a sealed transport cannot recover");
        let error = payload
            .downcast_ref::<TransportError>()
            .expect("the failure is a structured TransportError");
        assert_eq!(error.node, Some(1));
        assert!(
            error.detail.contains("could not be restored"),
            "detail should describe the failed recovery: {}",
            error.detail
        );
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "failure must surface in bounded time, not hang"
        );
    }
}
