//! Real TCP loopback delivery with one reader task per node.
//!
//! # Topology
//!
//! A star over `127.0.0.1`: the transport binds an ephemeral loopback
//! listener and opens one connection per node. The engine side holds every
//! connection's write half; each node's read half is owned by a dedicated
//! **node task** — a `std::thread` that blocks on the socket, timestamps
//! each frame the moment it is fully read, and reports the arrival over an
//! in-process channel. Protocol stepping stays in the (sans-I/O) engine;
//! the node tasks are the I/O half of each node.
//!
//! # What crosses the wire
//!
//! One frame per `(message, receiver)` copy: a 12-byte header (sequence
//! number + payload length) followed by `ceil(size_bits / 8)` payload bytes
//! (capped at 1 MiB), so bandwidth on the loopback device scales with the
//! protocol's real bit complexity. The typed payload itself does not need a
//! serialization format — it crosses via an `Arc` side table keyed by the
//! sequence number, which is also what keeps this backend protocol-agnostic.
//!
//! # Timing semantics
//!
//! Pacing is still round-based: `deliver` blocks until every copy submitted
//! for the previous round has physically arrived, then hands them to
//! inboxes in send order. Verdicts, bit counts, and rounds are therefore
//! **identical to lockstep** — what this backend adds is genuine wall-clock
//! measurement: per-copy delay (write-to-read through the kernel) and
//! per-round completion times, which surface as the report's latency
//! observables. Those numbers are real and hence *not* deterministic; CI
//! compares them with `ba-bench diff --ignore-observable 'latency_*'`.

use std::collections::BTreeMap;
use std::io::{self, BufWriter, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ba_sim::ids::{NodeId, Round};
use ba_sim::message::{Envelope, Incoming, Message, Recipient};
use ba_sim::transport::{Transport, TransportStats};

/// Sequence + payload length, little-endian.
const HEADER_BYTES: usize = 12;
/// Ceiling on per-copy payload bytes pushed through the socket (a guard for
/// pathological message sizes; the byte count is still metered from
/// `size_bits` upstream).
const MAX_PAYLOAD_BYTES: usize = 1 << 20;
/// How long `deliver` waits for any single arrival before declaring the
/// loopback wedged.
const ARRIVAL_TIMEOUT: Duration = Duration::from_secs(30);

/// An arrival report from a node task.
struct Arrival {
    seq: u64,
    at: Instant,
}

/// A copy written to the wire and not yet handed to an inbox.
struct Outstanding<M> {
    receiver: usize,
    from: NodeId,
    msg: Arc<M>,
    sent_at: Instant,
}

/// See the [module docs](self).
pub struct TcpTransport<M> {
    writers: Vec<BufWriter<TcpStream>>,
    readers: Vec<std::thread::JoinHandle<()>>,
    arrivals: mpsc::Receiver<Arrival>,
    started: Instant,
    next_seq: u64,
    /// Keyed by sequence number (= send order) so delivery drains
    /// deterministically even though arrivals race.
    outstanding: BTreeMap<u64, Outstanding<M>>,
    delivered_ms: Vec<f64>,
    round_end_ms: Vec<f64>,
}

impl<M> TcpTransport<M> {
    /// Binds the loopback star for an `n`-node population and spawns the
    /// `n` node tasks.
    pub fn new(n: usize) -> io::Result<TcpTransport<M>> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let (tx, arrivals) = mpsc::channel::<Arrival>();
        let mut writers = Vec::with_capacity(n);
        let mut readers = Vec::with_capacity(n);
        for node in 0..n {
            // Sequential connect-then-accept on one thread: the accepted
            // stream is this node's peer.
            let writer = TcpStream::connect(addr)?;
            writer.set_nodelay(true)?;
            let (reader, _) = listener.accept()?;
            reader.set_nodelay(true)?;
            let tx = tx.clone();
            readers.push(
                std::thread::Builder::new()
                    .name(format!("ba-net-node-{node}"))
                    .spawn(move || node_task(reader, tx))?,
            );
            writers.push(BufWriter::new(writer));
        }
        Ok(TcpTransport {
            writers,
            readers,
            arrivals,
            started: Instant::now(),
            next_seq: 0,
            outstanding: BTreeMap::new(),
            delivered_ms: Vec::new(),
            round_end_ms: Vec::new(),
        })
    }

    /// Writes one copy's frame to `receiver`'s socket and records it.
    fn send_copy(&mut self, env: &Envelope<M>, receiver: usize)
    where
        M: Message,
    {
        let seq = self.next_seq;
        self.next_seq += 1;
        let payload_len = env.msg.size_bits().div_ceil(8).min(MAX_PAYLOAD_BYTES);
        let mut header = [0u8; HEADER_BYTES];
        header[..8].copy_from_slice(&seq.to_le_bytes());
        header[8..].copy_from_slice(&(payload_len as u32).to_le_bytes());
        let sent_at = Instant::now();
        let w = &mut self.writers[receiver];
        w.write_all(&header).expect("write frame header to loopback");
        // The payload bytes only need to exist on the wire; zeros carry the
        // size. io::repeat keeps this allocation-free for large messages.
        io::copy(&mut io::repeat(0).take(payload_len as u64), w)
            .expect("write frame payload to loopback");
        self.outstanding.insert(
            seq,
            Outstanding { receiver, from: env.from, msg: Arc::clone(&env.msg), sent_at },
        );
    }
}

/// The per-node I/O task: block on the socket, timestamp each fully-read
/// frame, report it. Exits when the engine drops the write half.
fn node_task(mut stream: TcpStream, tx: mpsc::Sender<Arrival>) {
    let mut header = [0u8; HEADER_BYTES];
    let mut scratch = vec![0u8; 64 * 1024];
    loop {
        if read_exact_or_eof(&mut stream, &mut header) {
            return;
        }
        let seq = u64::from_le_bytes(header[..8].try_into().expect("8 header bytes"));
        let mut remaining =
            u32::from_le_bytes(header[8..].try_into().expect("4 header bytes")) as usize;
        while remaining > 0 {
            let take = remaining.min(scratch.len());
            stream.read_exact(&mut scratch[..take]).expect("read frame payload");
            remaining -= take;
        }
        if tx.send(Arrival { seq, at: Instant::now() }).is_err() {
            return; // transport dropped mid-flight (engine panicked)
        }
    }
}

/// `read_exact`, except a clean EOF before the first byte returns `true`
/// (the engine closed the connection: normal shutdown).
fn read_exact_or_eof(stream: &mut TcpStream, buf: &mut [u8]) -> bool {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return true,
            Ok(0) => panic!("loopback peer closed mid-frame"),
            Ok(k) => filled += k,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => panic!("loopback read failed: {e}"),
        }
    }
    false
}

impl<M: Message + Send + Sync> Transport<M> for TcpTransport<M> {
    fn submit(&mut self, _round: Round, envelopes: Vec<Envelope<M>>) {
        let n = self.writers.len();
        for env in envelopes {
            match env.to {
                Recipient::All => {
                    for receiver in 0..n {
                        self.send_copy(&env, receiver);
                    }
                }
                Recipient::One(target) => self.send_copy(&env, target.index()),
            }
        }
        for w in &mut self.writers {
            w.flush().expect("flush loopback writer");
        }
    }

    fn deliver(&mut self, _round: Round, inboxes: &mut [Vec<Incoming<M>>]) {
        // Wait for the wire to drain: every outstanding copy must land.
        let mut arrived: BTreeMap<u64, Instant> = BTreeMap::new();
        while arrived.len() < self.outstanding.len() {
            let arrival = self
                .arrivals
                .recv_timeout(ARRIVAL_TIMEOUT)
                .expect("loopback arrival within timeout");
            arrived.insert(arrival.seq, arrival.at);
        }
        // Hand copies to inboxes in send (sequence) order — arrival order
        // raced, delivery order must not.
        for (seq, copy) in std::mem::take(&mut self.outstanding) {
            let at = arrived.remove(&seq).expect("every outstanding seq arrived");
            self.delivered_ms.push(at.duration_since(copy.sent_at).as_secs_f64() * 1e3);
            inboxes[copy.receiver].push(Incoming { from: copy.from, msg: copy.msg });
        }
        self.round_end_ms.push(self.started.elapsed().as_secs_f64() * 1e3);
    }

    fn in_flight(&self) -> usize {
        self.outstanding.len()
    }

    fn finish(&mut self, rounds_used: u64) -> Option<TransportStats> {
        // `deliver` ran once per executed round; trim in case the engine
        // stopped before a trailing deliver (it does not today).
        self.round_end_ms.truncate(rounds_used as usize);
        let delivered = self.delivered_ms.len() as u64;
        let mut delays = std::mem::take(&mut self.delivered_ms);
        Some(TransportStats {
            round_end_ms: std::mem::take(&mut self.round_end_ms),
            delay_p50_ms: percentile(&mut delays, 50.0),
            delay_p95_ms: percentile(&mut delays, 95.0),
            delay_p99_ms: percentile(&mut delays, 99.0),
            delivered,
            // Round pacing waits for the wire: nothing misses its round and
            // nothing is left behind.
            late_deliveries: 0,
            undelivered: self.outstanding.len() as u64,
        })
    }
}

impl<M> Drop for TcpTransport<M> {
    fn drop(&mut self) {
        // Closing the write halves EOFs every node task.
        self.writers.clear();
        for handle in self.readers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Nearest-rank percentile (q in [0, 100]) of an unsorted sample.
fn percentile(samples: &mut [f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("wall-clock delays are finite"));
    let rank = ((q / 100.0) * samples.len() as f64).ceil() as usize;
    samples[rank.clamp(1, samples.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_sim::message::MsgId;

    #[derive(Clone, Debug, PartialEq)]
    struct Blob(usize);

    impl Message for Blob {
        fn size_bits(&self) -> usize {
            self.0
        }
    }

    fn env(id: u64, from: usize, to: Recipient, bits: usize) -> Envelope<Blob> {
        Envelope {
            id: MsgId(id),
            from: NodeId(from),
            to,
            round: Round(0),
            honest_send: true,
            removed: false,
            msg: Arc::new(Blob(bits)),
        }
    }

    #[test]
    fn frames_cross_real_sockets_and_land_in_send_order() {
        let mut t: TcpTransport<Blob> = TcpTransport::new(3).expect("bind loopback");
        t.submit(
            Round(0),
            vec![
                env(0, 0, Recipient::All, 80_000), // 10 KB really crosses the wire
                env(1, 1, Recipient::One(NodeId(2)), 8),
                env(2, 2, Recipient::All, 1),
            ],
        );
        let mut inboxes = vec![Vec::new(), Vec::new(), Vec::new()];
        t.deliver(Round(1), &mut inboxes);
        let payloads =
            |i: usize| inboxes[i].iter().map(|m: &Incoming<Blob>| m.msg.0).collect::<Vec<_>>();
        assert_eq!(payloads(0), vec![80_000, 1]);
        assert_eq!(payloads(1), vec![80_000, 1]);
        assert_eq!(payloads(2), vec![80_000, 8, 1]);
        assert_eq!(t.in_flight(), 0);
        let stats = t.finish(1).expect("tcp measures wall clock");
        assert_eq!(stats.delivered, 7);
        assert_eq!(stats.undelivered, 0);
        assert!(stats.delay_p99_ms >= stats.delay_p50_ms);
        assert_eq!(stats.round_end_ms.len(), 1);
        assert!(stats.round_end_ms[0] > 0.0);
    }

    #[test]
    fn empty_round_still_stamps_a_round_end() {
        let mut t: TcpTransport<Blob> = TcpTransport::new(2).expect("bind loopback");
        t.submit(Round(0), Vec::new());
        let mut inboxes = vec![Vec::new(), Vec::new()];
        t.deliver(Round(1), &mut inboxes);
        assert!(inboxes.iter().all(|b| b.is_empty()));
        assert_eq!(t.finish(1).unwrap().delivered, 0);
    }
}
