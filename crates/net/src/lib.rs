//! # ba-net
//!
//! Real-I/O delivery backends for `ba-sim`'s sans-I/O transport seam.
//!
//! The simulation core deliberately contains no sockets: protocol stepping
//! is pure, and a [`ba_sim::Transport`] decides when messages arrive. This
//! crate supplies the backend that cannot live inside the core — a real TCP
//! loopback network ([`tcp::TcpTransport`]) with one reader task per
//! materialized node — plus [`execute`], the one-stop entry point that
//! builds whichever backend a [`SimConfig`] names and runs the execution.
//!
//! Everything protocol-visible (verdicts, bit counts, rounds) stays
//! byte-identical to lockstep under the TCP backend — delivery still paces
//! round-by-round in send order; what changes is that every copy crosses a
//! kernel socket and the report's latency observables become genuine
//! wall-clock measurements instead of virtual-clock arithmetic.

pub mod tcp;

use ba_sim::adversary::Adversary;
use ba_sim::engine::{BoxedProtocol, RunReport, Sim, SimConfig};
use ba_sim::ids::{Bit, NodeId};
use ba_sim::message::Message;
use ba_sim::transport::fault::FaultyTransport;
use ba_sim::transport::{BaseTransport, TransportSpec};

pub use tcp::TcpTransport;

/// Runs one execution under whatever transport `config.transport` names.
///
/// The in-core backends (lockstep, simulated latency) are instantiated by
/// the engine itself; [`TransportSpec::Tcp`] is built here — this function
/// is what lets protocol crates stay free of I/O while still offering every
/// backend. Drop-in replacement for [`Sim::run_boxed`].
///
/// # Panics
///
/// Panics if the loopback listener cannot be bound (no TCP smoke is
/// meaningful without it), and propagates the engine's own panics.
pub fn execute<M, A>(
    config: &SimConfig,
    inputs: Vec<Bit>,
    adversary: A,
    factory: impl FnMut(NodeId, u64) -> BoxedProtocol<M> + Send,
) -> RunReport
where
    M: Message + Send + Sync + 'static,
    A: Adversary<M> + Send,
{
    match config.transport {
        TransportSpec::Tcp => {
            let transport = TcpTransport::new(config.n).expect("bind TCP loopback transport");
            Sim::run_with_transport(config, inputs, adversary, factory, Box::new(transport))
        }
        TransportSpec::Faulty { inner: BaseTransport::Tcp, plan } => {
            let tcp: TcpTransport<M> =
                TcpTransport::new(config.n).expect("bind TCP loopback transport");
            let transport = FaultyTransport::new(Box::new(tcp), plan, config.n, config.seed);
            Sim::run_with_transport(config, inputs, adversary, factory, Box::new(transport))
        }
        _ => Sim::run_boxed(config, inputs, adversary, factory),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_sim::adversary::{CorruptionModel, Passive};
    use ba_sim::ids::Round;
    use ba_sim::message::{Incoming, Outbox};
    use ba_sim::protocol::Protocol;

    #[derive(Clone, Debug)]
    struct Vote(bool);

    impl Message for Vote {
        fn size_bits(&self) -> usize {
            1
        }
    }

    struct Echo {
        input: Bit,
        done: Option<Bit>,
    }

    impl Protocol<Vote> for Echo {
        fn step(&mut self, round: Round, inbox: &[Incoming<Vote>], out: &mut Outbox<Vote>) {
            match round.0 {
                0 => out.multicast(Vote(self.input)),
                _ => {
                    let ones = inbox.iter().filter(|m| m.msg.0).count();
                    self.done = Some(ones * 2 > inbox.len());
                }
            }
        }
        fn output(&self) -> Option<Bit> {
            self.done
        }
        fn halted(&self) -> bool {
            self.done.is_some()
        }
    }

    fn run_with(spec: TransportSpec) -> RunReport {
        let config = SimConfig::new(5, 0, CorruptionModel::Static, 7).with_transport(spec);
        let inputs = vec![true, true, true, false, true];
        execute(&config, inputs.clone(), Passive, move |id, _| {
            Box::new(Echo { input: inputs[id.index()], done: None })
        })
    }

    #[test]
    fn execute_dispatches_lockstep() {
        let report = run_with(TransportSpec::Lockstep);
        assert!(report.outputs.iter().all(|o| *o == Some(true)));
        assert!(report.metrics.latency.is_none(), "lockstep keeps no clock");
    }

    #[test]
    fn faulty_wrapper_with_empty_plan_matches_bare_tcp() {
        use ba_sim::transport::fault::FaultPlan;
        let bare = run_with(TransportSpec::Tcp);
        let wrapped = run_with(TransportSpec::Faulty {
            inner: BaseTransport::Tcp,
            plan: FaultPlan::default(),
        });
        assert_eq!(wrapped, bare, "empty fault plan is a structural pass-through");
        assert!(wrapped.metrics.faults.is_none(), "empty plan keeps no fault stats");
        let latency = wrapped.metrics.latency.as_ref().expect("inner tcp still measures");
        assert_eq!(latency.delivered, 25);
    }

    #[test]
    fn tcp_matches_lockstep_observables_with_wall_clock_stats() {
        let lockstep = run_with(TransportSpec::Lockstep);
        let tcp = run_with(TransportSpec::Tcp);
        // Protocol observables identical (Metrics equality excludes the
        // substrate measurements by design).
        assert_eq!(tcp, lockstep);
        let latency = tcp.metrics.latency.as_ref().expect("tcp measures wall clock");
        assert_eq!(latency.delivered, 25, "5 multicasts x 5 recipients");
        assert_eq!(latency.undelivered, 0);
        assert!(latency.commit_p99_ms > 0.0, "wall clock advanced");
        assert!(latency.delay_p50_ms <= latency.delay_p99_ms);
    }
}
