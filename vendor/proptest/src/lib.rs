//! Offline stand-in for the subset of the `proptest` crate this workspace
//! uses.
//!
//! The build environment has no crates.io access, so this vendored crate
//! provides the same surface (`proptest!`, `prop_oneof!`, `any`, `Strategy`,
//! `Just`, `prop::collection::{vec, btree_set}`, the `prop_assert*` family)
//! backed by a deterministic SplitMix64-seeded generator. Differences from
//! the real crate: no shrinking (failures report the raw counterexample),
//! no persisted failure seeds, and rejected cases (`prop_assume!`) are
//! skipped rather than retried-with-budget.

use std::fmt;

/// Deterministic test-case generator (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> TestRng {
        TestRng(seed)
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniform value below `bound` (modulo bias is acceptable for
    /// test-case generation).
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Returns a uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Why a generated test case did not complete.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// An assertion failed; the message describes the counterexample.
    Fail(String),
    /// The case was rejected by `prop_assume!`.
    Reject,
}

impl TestCaseError {
    /// Constructs a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// Constructs a rejection.
    pub fn reject() -> TestCaseError {
        TestCaseError::Reject
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject => write!(f, "case rejected by prop_assume!"),
        }
    }
}

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` generated cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::TestRng;

    /// A generator of test values (no shrinking in the stand-in).
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Generates one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Erases the strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            (**self).new_value(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The `prop_map` adapter.
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn new_value(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// Uniform choice among boxed strategies (the `prop_oneof!` backend).
    pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

    impl<T> Union<T> {
        /// Creates a union over the given strategies.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union(options)
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.0.len() as u64) as usize;
            self.0[idx].new_value(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {
            $(
                impl Strategy for ::std::ops::Range<$t> {
                    type Value = $t;

                    fn new_value(&self, rng: &mut TestRng) -> $t {
                        assert!(self.start < self.end, "empty range strategy");
                        let span = (self.end - self.start) as u64;
                        self.start + rng.below(span) as $t
                    }
                }
            )*
        };
    }

    int_range_strategy!(u8, u16, u32, usize);

    impl Strategy for ::std::ops::Range<u64> {
        type Value = u64;

        fn new_value(&self, rng: &mut TestRng) -> u64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.below(self.end - self.start)
        }
    }

    impl Strategy for ::std::ops::Range<f64> {
        type Value = f64;

        fn new_value(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident/$idx:tt),+))*) => {
            $(
                impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                    type Value = ($($name::Value,)+);

                    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                        ($(self.$idx.new_value(rng),)+)
                    }
                }
            )*
        };
    }

    tuple_strategy! {
        (A/0, B/1)
        (A/0, B/1, C/2)
        (A/0, B/1, C/2, D/3)
        (A/0, B/1, C/2, D/3, E/4)
        (A/0, B/1, C/2, D/3, E/4, F/5)
        (A/0, B/1, C/2, D/3, E/4, F/5, G/6)
        (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7)
    }
}

/// The `any::<T>()` entry point and its supporting trait.
pub mod arbitrary {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Types with a canonical "generate anything" strategy.
    pub trait Arbitrary: Sized {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// Strategy generating arbitrary values of `T`.
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Returns the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {
            $(
                impl Arbitrary for $t {
                    fn arbitrary(rng: &mut TestRng) -> $t {
                        rng.next_u64() as $t
                    }
                }
            )*
        };
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut TestRng) -> u128 {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }

    impl<T: Arbitrary> Arbitrary for Option<T> {
        fn arbitrary(rng: &mut TestRng) -> Option<T> {
            if rng.next_u64() & 1 == 1 {
                Some(T::arbitrary(rng))
            } else {
                None
            }
        }
    }

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut TestRng) -> [T; N] {
            std::array::from_fn(|_| T::arbitrary(rng))
        }
    }

    impl<T: Arbitrary> Arbitrary for Vec<T> {
        fn arbitrary(rng: &mut TestRng) -> Vec<T> {
            let len = rng.below(33) as usize;
            (0..len).map(|_| T::arbitrary(rng)).collect()
        }
    }
}

/// Collection strategies (`prop::collection::*`).
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a size range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose lengths fall in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<T>` with a size range.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates sets whose sizes fall in `size` (best effort when the
    /// element domain is too small to reach the target size).
    pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        assert!(size.start < size.end, "empty size range");
        BTreeSetStrategy { element, size }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let target = self.size.start + rng.below(span) as usize;
            let mut out = BTreeSet::new();
            // Bounded retries: duplicates do not count toward the target.
            for _ in 0..target.max(1) * 32 {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.new_value(rng));
            }
            out
        }
    }
}

/// Mirror of the real crate's `prop` facade module.
pub mod prop {
    pub use crate::collection;
}

/// The glob-import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        ProptestConfig, TestCaseError,
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: {} == {} ({:?} vs {:?})",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)+);
    }};
}

/// Fails the current case if the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: {} != {} (both {:?})",
            stringify!($a), stringify!($b), a
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, $($fmt)+);
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject());
        }
    };
}

/// Uniform choice among the given strategies (all generating the same type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Defines property tests: each `fn name(pat in strategy, ...)` runs the
/// body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                use $crate::strategy::Strategy as _;
                let config: $crate::ProptestConfig = $config;
                // Deterministic per-test seed derived from the test name.
                let seed = stringify!($name)
                    .bytes()
                    .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                        (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3)
                    });
                let mut rng = $crate::TestRng::new(seed);
                let mut ran: u32 = 0;
                let mut attempts: u32 = 0;
                while ran < config.cases && attempts < config.cases * 16 {
                    attempts += 1;
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $(let $pat = ($strategy).new_value(&mut rng);)+
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        Ok(()) => ran += 1,
                        Err($crate::TestCaseError::Reject) => {}
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("proptest case {} failed: {}", ran, msg);
                        }
                    }
                }
            }
        )*
    };
}

// Re-export for macro hygiene users that path through the crate root.
pub use arbitrary::{any, Arbitrary};
pub use strategy::{BoxedStrategy, Just, Strategy};

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Copy, PartialEq, Eq, Debug, PartialOrd, Ord)]
    enum Color {
        Red,
        Green,
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(a in 3u64..10, b in 0usize..5, x in 0.25f64..0.75) {
            prop_assert!((3..10).contains(&a));
            prop_assert!(b < 5);
            prop_assert!((0.25..0.75).contains(&x));
        }

        #[test]
        fn tuples_and_map_compose(v in (0u64..4, 0u64..4).prop_map(|(a, b)| a * 4 + b)) {
            prop_assert!(v < 16);
        }

        #[test]
        fn oneof_and_just_choose_between_options(c in prop_oneof![Just(Color::Red), Just(Color::Green)]) {
            prop_assert!(c == Color::Red || c == Color::Green);
        }

        #[test]
        fn collections_respect_sizes(
            v in prop::collection::vec(0u8..10, 2..6),
            s in prop::collection::btree_set(0usize..100, 1..8),
        ) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(!s.is_empty() && s.len() < 8);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u64..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }

    #[test]
    fn arbitrary_composites() {
        let mut rng = crate::TestRng::new(1);
        let arr: [u64; 4] = crate::Arbitrary::arbitrary(&mut rng);
        let opt: Option<bool> = crate::Arbitrary::arbitrary(&mut rng);
        let bytes: Vec<u8> = crate::Arbitrary::arbitrary(&mut rng);
        assert!(arr.iter().any(|&x| x != 0));
        let _ = (opt, bytes);
    }
}
