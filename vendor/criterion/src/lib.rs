//! Offline stand-in for the subset of the `criterion` benchmark harness this
//! workspace uses.
//!
//! The build environment has no crates.io access, so this vendored crate
//! provides the same surface (`Criterion`, `criterion_group!`,
//! `criterion_main!`, `BenchmarkGroup`, `BenchmarkId`, `Bencher`,
//! `BatchSize`, `black_box`) backed by a small wall-clock measurement loop:
//! each benchmark is warmed up, the per-sample iteration count is calibrated
//! to a target sample duration, and the minimum / median / mean over the
//! samples are reported in Criterion's familiar `time: [low mid high]`
//! format. There are no plots, baselines, or statistical tests — just honest
//! medians, which is what the repository's before/after notes record.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP: Duration = Duration::from_millis(300);
const TARGET_SAMPLE: Duration = Duration::from_millis(10);

/// Benchmark harness entry point (stand-in).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(3);
        self
    }

    /// Runs a single benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), sample_size: self.sample_size, _parent: self }
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().0);
        run_bench(&full, self.sample_size, f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().0);
        run_bench(&full, self.sample_size, |b| f(b, input));
        self
    }

    /// Finishes the group (no-op in the stand-in).
    pub fn finish(self) {}
}

/// A benchmark identifier (`function_name/parameter`).
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId(format!("{}/{}", function.into(), parameter))
    }
}

/// Conversion into a [`BenchmarkId`] (strings and ids both accepted).
pub trait IntoBenchmarkId {
    /// Performs the conversion.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self.to_string())
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self)
    }
}

/// Batch-size hint for [`Bencher::iter_batched`] (accepted, not used).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration setup values.
    SmallInput,
    /// Large per-iteration setup values.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Passed to each benchmark closure; `iter`/`iter_batched` time the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the harness-chosen number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over values produced by `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    // Warm up and calibrate: grow the per-sample iteration count until one
    // sample takes roughly TARGET_SAMPLE.
    let mut iters: u64 = 1;
    let warmup_start = Instant::now();
    let mut per_iter;
    loop {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        per_iter = b.elapsed.checked_div(iters as u32).unwrap_or_default();
        if b.elapsed >= TARGET_SAMPLE || warmup_start.elapsed() >= WARMUP {
            break;
        }
        iters = (iters * 2).min(1 << 40);
    }
    if per_iter > Duration::ZERO {
        let ideal = TARGET_SAMPLE.as_nanos() / per_iter.as_nanos().max(1);
        iters = (ideal as u64).clamp(1, 1 << 40);
    }

    let mut samples_ns: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        samples_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    let min = samples_ns[0];
    let median = samples_ns[samples_ns.len() / 2];
    let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
    println!(
        "{name:<44} time:   [{} {} {}]  ({} samples x {} iters)",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(mean),
        sample_size,
        iters
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Defines a benchmark group function, mirroring Criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Defines `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0u64;
        c.bench_function("smoke/add", |b| {
            runs += 1;
            b.iter(|| black_box(2u64) + black_box(3u64))
        });
        assert!(runs >= 3, "closure should run for calibration plus samples");
    }

    #[test]
    fn group_and_batched_paths_work() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::new("param", 7), &7u64, |b, &x| {
            b.iter_batched(|| x, |v| v * 2, BatchSize::SmallInput)
        });
        g.finish();
    }

    #[test]
    fn fmt_ns_scales() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("µs"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
        assert!(fmt_ns(12_000_000_000.0).ends_with('s'));
    }
}
