//! Offline stand-in for the subset of the `rand` crate this workspace uses.
//!
//! The build environment has no crates.io access, so this vendored crate
//! provides the same names (`rngs::StdRng`, `SeedableRng`, `RngCore`, `Rng`)
//! backed by a deterministic xoshiro256++ generator seeded via SplitMix64.
//!
//! It is **not** statistically or bit-for-bit compatible with the real
//! `rand::rngs::StdRng` (ChaCha12); it only has to be a high-quality
//! deterministic PRNG, which is all the simulator's adversaries require.
//! If the real crate ever becomes available, deleting `vendor/rand` and
//! switching the workspace dependency back is the entire migration.

/// Core RNG interface: raw integer and byte output.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// Convenience sampling methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        // 53 uniform mantissa bits, exactly the resolution of an f64 in [0,1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// Returns a uniform value in `[0, bound)` (Lemire-style rejection).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    fn gen_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_below bound must be positive");
        // Rejection sampling over the widened product keeps the draw unbiased.
        let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
        loop {
            let v = self.next_u64();
            let (hi, lo) = {
                let wide = (v as u128) * (bound as u128);
                ((wide >> 64) as u64, wide as u64)
            };
            if lo <= zone {
                return hi;
            }
        }
    }

    /// Returns a uniform `usize` in `range` (half-open).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "gen_range requires a non-empty range");
        range.start + self.gen_below((range.end - range.start) as u64) as usize
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Seedable construction interface (the subset the workspace uses).
pub trait SeedableRng: Sized {
    /// The seed type (32 bytes, like the real `StdRng`).
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for the real
    /// ChaCha12-based `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut s = [0u64; 4];
            for (i, slot) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *slot = u64::from_le_bytes(b);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 0xBF58_476D_1CE4_E5B9, 0x94D0_49BB_1331_11EB, 1];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let (xa, xb, xc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn gen_bool_edges_and_rough_balance() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
        let heads = (0..1000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((350..=650).contains(&heads), "heads={heads}");
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(5..17);
            assert!((5..17).contains(&v));
        }
    }
}
