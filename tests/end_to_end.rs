//! Cross-crate integration tests: full protocol stacks under honest and
//! benign-fault executions, across both eligibility backends.

use std::sync::Arc;

use ba_repro::prelude::*;

fn mixed_inputs(n: usize) -> Vec<Bit> {
    (0..n).map(|i| i % 2 == 0).collect()
}

#[test]
fn all_four_ba_protocols_agree_on_unanimous_inputs() {
    let n = 90;
    let seed = 11;
    for bit in [false, true] {
        // subq_half
        let elig = Arc::new(IdealMine::new(seed, MineParams::new(n, 20.0)));
        let cfg = IterConfig::subq_half(n, elig);
        let sim = SimConfig::new(n, 0, CorruptionModel::Static, seed);
        let (r, v) = ba_repro::iter_run(&cfg, &sim, vec![bit; n], Passive);
        assert!(v.all_ok(), "subq_half bit={bit}: {v:?}");
        assert!(r.outputs.iter().all(|o| *o == Some(bit)));

        // quadratic_half
        let kc = Arc::new(Keychain::from_seed(seed, n, SigMode::Ideal));
        let cfg = IterConfig::quadratic_half(n, kc, seed);
        let (r, v) = ba_repro::iter_run(&cfg, &sim, vec![bit; n], Passive);
        assert!(v.all_ok(), "quadratic bit={bit}: {v:?}");
        assert!(r.outputs.iter().all(|o| *o == Some(bit)));

        // subq_third
        let elig = Arc::new(IdealMine::new(seed, MineParams::new(n, 20.0)));
        let cfg = EpochConfig::subq_third(n, 8, elig);
        let (r, v) = ba_repro::epoch_run(&cfg, &sim, vec![bit; n], Passive);
        assert!(v.all_ok(), "subq_third bit={bit}: {v:?}");
        assert!(r.outputs.iter().all(|o| *o == Some(bit)));

        // warmup_third
        let kc = Arc::new(Keychain::from_seed(seed, n, SigMode::Ideal));
        let cfg = EpochConfig::warmup_third(n, 8, kc);
        let (r, v) = ba_repro::epoch_run(&cfg, &sim, vec![bit; n], Passive);
        assert!(v.all_ok(), "warmup bit={bit}: {v:?}");
        assert!(r.outputs.iter().all(|o| *o == Some(bit)));
    }
}

#[test]
fn subq_half_handles_every_input_split() {
    let n = 80;
    for ones in [0usize, 1, n / 4, n / 2, 3 * n / 4, n - 1, n] {
        let seed = 100 + ones as u64;
        let elig = Arc::new(IdealMine::new(seed, MineParams::new(n, 22.0)));
        let cfg = IterConfig::subq_half(n, elig);
        let sim = SimConfig::new(n, 0, CorruptionModel::Static, seed);
        let inputs: Vec<Bit> = (0..n).map(|i| i < ones).collect();
        let (_r, v) = ba_repro::iter_run(&cfg, &sim, inputs, Passive);
        assert!(v.all_ok(), "ones={ones}: {v:?}");
    }
}

#[test]
fn determinism_same_seed_same_run() {
    let n = 60;
    let run = |seed: u64| {
        let elig = Arc::new(IdealMine::new(seed, MineParams::new(n, 16.0)));
        let cfg = IterConfig::subq_half(n, elig);
        let sim = SimConfig::new(n, 0, CorruptionModel::Static, seed);
        let (r, _) = ba_repro::iter_run(&cfg, &sim, mixed_inputs(n), Passive);
        (r.outputs.clone(), r.rounds_used, r.metrics.honest_multicasts)
    };
    assert_eq!(run(5), run(5));
    // Different seeds should (almost surely) differ in communication trace.
    let a = run(5);
    let b = run(6);
    assert!(a.1 != b.1 || a.2 != b.2 || a.0 != b.0, "two seeds produced identical traces");
}

#[test]
fn broadcast_wrapper_over_subquadratic_ba() {
    let n = 70;
    let seed = 21;
    for bit in [false, true] {
        let elig = Arc::new(IdealMine::new(seed, MineParams::new(n, 20.0)));
        let cfg = IterConfig::subq_half(n, elig);
        let kc = Arc::new(Keychain::from_seed(seed, n, SigMode::Ideal));
        let sim = SimConfig::new(n, 0, CorruptionModel::Static, seed);
        let (report, verdict) = broadcast::run_iter_bb(&cfg, kc, &sim, NodeId(0), bit, Passive);
        assert!(verdict.all_ok(), "bit={bit}: {verdict:?}");
        assert!(report.outputs.iter().all(|o| *o == Some(bit)));
    }
}

#[test]
fn dolev_strong_baseline_end_to_end() {
    let n = 15;
    for f in [0usize, 3, 7] {
        let cfg = DsConfig {
            n,
            f,
            sender: NodeId(0),
            keychain: Arc::new(Keychain::from_seed(f as u64, n, SigMode::Ideal)),
        };
        let sim = SimConfig::new(n, 0, CorruptionModel::Static, 9);
        let (report, verdict) = dolev_strong::run(&cfg, &sim, true, Passive);
        assert!(verdict.all_ok(), "f={f}: {verdict:?}");
        assert_eq!(report.rounds_used, f as u64 + 2, "f+1 protocol rounds + sender round");
    }
}

#[test]
fn crash_faults_tolerated_up_to_design_margin() {
    let n = 120;
    let seed = 31;
    // subq_half tolerates (1/2 - eps)n; crash a third.
    let f = n / 3;
    let elig = Arc::new(IdealMine::new(seed, MineParams::new(n, 24.0)));
    let cfg = IterConfig::subq_half(n, elig);
    let sim = SimConfig::new(n, f, CorruptionModel::Static, seed);
    let adversary = CrashAt { nodes: (n - f..n).map(NodeId).collect(), at_round: 0 };
    let (_r, v) = ba_repro::iter_run(&cfg, &sim, mixed_inputs(n), adversary);
    assert!(v.all_ok(), "{v:?}");
}

#[test]
fn omission_faults_tolerated() {
    let n = 120;
    let seed = 33;
    let f = n / 4;
    let elig = Arc::new(IdealMine::new(seed, MineParams::new(n, 24.0)));
    let cfg = IterConfig::subq_half(n, elig);
    let sim = SimConfig::new(n, f, CorruptionModel::Static, seed);
    let adversary = Omission { nodes: (n - f..n).map(NodeId).collect(), drop_permille: 700 };
    let (_r, v) = ba_repro::iter_run(&cfg, &sim, mixed_inputs(n), adversary);
    assert!(v.all_ok(), "{v:?}");
}

#[test]
fn outputs_recorded_with_rounds() {
    let n = 50;
    let seed = 41;
    let elig = Arc::new(IdealMine::new(seed, MineParams::new(n, 16.0)));
    let cfg = IterConfig::subq_half(n, elig);
    let sim = SimConfig::new(n, 0, CorruptionModel::Static, seed);
    let (report, verdict) = ba_repro::iter_run(&cfg, &sim, vec![true; n], Passive);
    assert!(verdict.all_ok());
    for i in 0..n {
        assert!(report.output_rounds[i].is_some(), "node {i} must have an output round");
        assert!(report.output_rounds[i].unwrap().0 < report.rounds_used);
    }
}
