//! Integration tests for the two lower-bound harnesses: the quantitative
//! shape of Theorems 1/4 and 3 must hold across parameter settings.

use ba_repro::lowerbound::{theorem3, theorem4};

#[test]
fn theorem4_violation_collapses_with_message_budget() {
    // As the message budget (fanout) grows, the attack's success must fall
    // monotonically-ish from ~1 to ~0.
    let (n, f, seeds) = (60, 30, 15);
    let low = theorem4::run_cell(n, f, 0, seeds);
    let mid = theorem4::run_cell(n, f, 8, seeds);
    let high = theorem4::run_cell(n, f, 60, seeds);
    assert!(low.violation_rate > 0.85, "low budget must break: {}", low.violation_rate);
    assert!(high.violation_rate < 0.25, "high budget must survive: {}", high.violation_rate);
    assert!(low.mean_messages < mid.mean_messages);
    assert!(mid.mean_messages < high.mean_messages);
}

#[test]
fn theorem4_messages_scale_with_fanout() {
    let row = theorem4::run_cell(60, 20, 4, 5);
    // n-1 sender messages + ~4 per responsive node.
    assert!(row.mean_messages > 59.0);
    assert!(row.mean_messages < 60.0 + 60.0 * 6.0);
}

#[test]
fn theorem4_isolation_implies_violation() {
    // Whenever p is fully isolated, the run must be a violation (p outputs
    // the default 1 against everyone else's 0).
    let row = theorem4::run_cell(60, 30, 0, 20);
    assert!(row.violation_rate >= row.isolation_rate - f64::EPSILON);
}

#[test]
fn theorem3_contradiction_across_sizes() {
    for (n, committee) in [(10usize, 2usize), (30, 4), (80, 8), (150, 10)] {
        let rep = theorem3::run_experiment(n, committee);
        assert!(rep.q_valid, "n={n}: Q validity");
        assert!(rep.q_prime_valid, "n={n}: Q' validity");
        assert!(rep.contradiction_established(), "n={n}: contradiction");
        // The adaptive simulation needs only the speakers.
        assert!(
            rep.corruptions_needed <= committee + 1,
            "n={n}: corruptions {} > speakers {}",
            rep.corruptions_needed,
            committee + 1
        );
    }
}

#[test]
fn theorem3_corruptions_sublinear_in_n() {
    let n = 300;
    let rep = theorem3::run_experiment(n, 8);
    assert!(rep.corruptions_needed * 10 < n, "the attack must be sublinear");
}
