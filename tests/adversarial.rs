//! Cross-crate adversarial matrix: every protocol against every applicable
//! adversary, asserting the security boundary the paper draws.

use std::sync::Arc;

use ba_repro::prelude::*;

const N: usize = 240;
const LAMBDA: f64 = 18.0;

fn mixed_inputs(n: usize) -> Vec<Bit> {
    (0..n).map(|i| i < n / 2).collect()
}

#[test]
fn matrix_vote_flipper_vs_all_epoch_regimes() {
    // (regime name, config builder, expected-to-hold)
    let seeds = 0..5u64;
    let mut outcomes: Vec<(&str, u32, u32)> = Vec::new();

    let regimes: Vec<(&str, bool)> = vec![
        ("bit_specific", true),
        ("shared", false),
        ("chen_micali_erasure", true),
        ("chen_micali_no_erasure", false),
    ];
    for (name, expected_hold) in regimes {
        let mut held = 0u32;
        let mut broken = 0u32;
        for seed in seeds.clone() {
            let elig = Arc::new(IdealMine::new(seed, MineParams::new(N, LAMBDA)));
            let cfg = match name {
                "bit_specific" => EpochConfig::subq_third(N, 8, elig),
                "shared" => {
                    let kc = Arc::new(Keychain::from_seed(seed, N, SigMode::Ideal));
                    EpochConfig::subq_shared(N, 8, elig, kc)
                }
                "chen_micali_erasure" | "chen_micali_no_erasure" => {
                    let fs = Arc::new(FsService::from_seed(seed, N, 9));
                    EpochConfig::chen_micali(N, 8, elig, fs, name == "chen_micali_erasure")
                }
                _ => unreachable!(),
            };
            let adversary = VoteFlipper::new(cfg.auth.clone(), cfg.quorum);
            let sim = SimConfig::new(N, N / 3, CorruptionModel::Adaptive, seed);
            let (_r, v) = ba_repro::epoch_run(&cfg, &sim, mixed_inputs(N), adversary);
            if v.consistent {
                held += 1;
            } else {
                broken += 1;
            }
        }
        outcomes.push((name, held, broken));
        if expected_hold {
            assert!(held >= 4, "{name}: held only {held}/5 runs");
        } else {
            assert!(broken >= 4, "{name}: broke only {broken}/5 runs");
        }
    }
}

#[test]
fn strongly_adaptive_eraser_boundary() {
    // Strong adaptivity defeats subquadratic; plain adaptivity does not.
    let n = 400;
    let seed = 3;
    let elig = Arc::new(IdealMine::new(seed, MineParams::new(n, 16.0)));
    let mut cfg = IterConfig::subq_half(n, elig);
    cfg.max_iters = 6;
    let adversary = CommitteeEraser::starve_quorum(cfg.quorum);
    let sim = SimConfig::new(n, 190, CorruptionModel::StronglyAdaptive, seed);
    let (_r, v) = ba_repro::iter_run(&cfg, &sim, mixed_inputs(n), adversary);
    assert!(!v.all_ok(), "strongly adaptive eraser must win: {v:?}");

    let elig = Arc::new(IdealMine::new(seed, MineParams::new(n, 16.0)));
    let cfg2 = IterConfig::subq_half(n, elig);
    let adversary = CommitteeEraser::starve_quorum(cfg2.quorum);
    let sim = SimConfig::new(n, 190, CorruptionModel::Adaptive, seed);
    let (r, v) = ba_repro::iter_run(&cfg2, &sim, mixed_inputs(n), adversary);
    assert!(v.all_ok(), "adaptive (no removal) eraser must lose: {v:?}");
    assert_eq!(r.metrics.removals, 0);
}

#[test]
fn forger_threshold_brackets_one_half() {
    let n = 200;
    let mut below = 0;
    let mut above = 0;
    for seed in 0..5 {
        let elig = Arc::new(IdealMine::new(seed, MineParams::new(n, 24.0)));
        let cfg = IterConfig::subq_half(n, elig);
        let adv = CertForger::new(n, n / 4, true, cfg.quorum, cfg.auth.clone());
        let sim = SimConfig::new(n, n / 4, CorruptionModel::Static, seed);
        let (_r, v) = ba_repro::iter_run(&cfg, &sim, vec![false; n], adv);
        if !v.all_ok() {
            below += 1;
        }

        let elig = Arc::new(IdealMine::new(seed, MineParams::new(n, 24.0)));
        let cfg = IterConfig::subq_half(n, elig);
        let adv = CertForger::new(n, 7 * n / 10, true, cfg.quorum, cfg.auth.clone());
        let sim = SimConfig::new(n, 7 * n / 10, CorruptionModel::Static, seed);
        let (_r, v) = ba_repro::iter_run(&cfg, &sim, vec![false; n], adv);
        if !v.all_ok() {
            above += 1;
        }
    }
    assert!(below <= 1, "forgeries below threshold: {below}/5");
    assert!(above >= 4, "forgeries above threshold: {above}/5");
}

#[test]
fn byzantine_equivocating_leader_cannot_break_safety() {
    // A corrupt node that wins propose eligibility for both bits equivocates
    // via unicasts; safety must still hold (the vote rule abstains on
    // conflicting proposals, and commit needs zero opposing votes).
    struct EquivocatingProposers {
        auth: Auth,
        f: usize,
        n: usize,
    }
    impl Adversary<IterMsg> for EquivocatingProposers {
        fn setup(&mut self, ctx: &mut ba_repro::sim::AdvCtx<'_, IterMsg>) {
            for i in self.n - self.f..self.n {
                ctx.corrupt(NodeId(i)).unwrap();
            }
        }
        fn intervene(&mut self, ctx: &mut ba_repro::sim::AdvCtx<'_, IterMsg>) {
            // At each propose round, every corrupt node that can mine a
            // proposal for either bit sends conflicting proposals to the two
            // halves of the network.
            let round = ctx.round().0;
            if round < 3 || !(round - 3).is_multiple_of(4) {
                return;
            }
            let iter = 2 + (round - 2) / 4;
            for i in self.n - self.f..self.n {
                for bit in [false, true] {
                    let tag = MineTag::new(MsgKind::Propose, iter, bit);
                    if let Some(ev) = self.auth.attest(NodeId(i), &tag) {
                        let msg = IterMsg::Propose { iter, bit, cert: None, ev };
                        for target in 0..self.n - self.f {
                            if (target % 2 == 0) == bit {
                                ctx.inject(
                                    NodeId(i),
                                    ba_repro::sim::Recipient::One(NodeId(target)),
                                    msg.clone(),
                                )
                                .unwrap();
                            }
                        }
                    }
                }
            }
        }
    }

    let n = 160;
    for seed in 0..5 {
        let elig = Arc::new(IdealMine::new(seed, MineParams::new(n, 20.0)));
        let cfg = IterConfig::subq_half(n, elig);
        let adversary = EquivocatingProposers { auth: cfg.auth.clone(), f: n / 3, n };
        let sim = SimConfig::new(n, n / 3, CorruptionModel::Static, seed);
        let (_r, v) = ba_repro::iter_run(&cfg, &sim, mixed_inputs(n), adversary);
        assert!(v.consistent, "seed={seed}: equivocation broke consistency: {v:?}");
    }
}

#[test]
fn invalid_evidence_is_ignored_by_honest_nodes() {
    // A corrupt node spams votes with garbage tickets; the protocol must be
    // unaffected.
    struct GarbageSpammer {
        n: usize,
    }
    impl Adversary<IterMsg> for GarbageSpammer {
        fn setup(&mut self, ctx: &mut ba_repro::sim::AdvCtx<'_, IterMsg>) {
            ctx.corrupt(NodeId(self.n - 1)).unwrap();
        }
        fn intervene(&mut self, ctx: &mut ba_repro::sim::AdvCtx<'_, IterMsg>) {
            let round = ctx.round().0;
            if round > 6 {
                return;
            }
            // Ideal tickets not registered with F_mine: verify() = false.
            for iter in 1..3u64 {
                for bit in [false, true] {
                    let msg = IterMsg::Vote {
                        iter,
                        bit,
                        just: None,
                        ev: ba_repro::core::auth::Evidence::Ticket(Ticket::Ideal),
                    };
                    ctx.inject(NodeId(self.n - 1), ba_repro::sim::Recipient::All, msg).unwrap();
                }
            }
        }
    }

    let n = 100;
    let seed = 5;
    let elig = Arc::new(IdealMine::new(seed, MineParams::new(n, 20.0)));
    let cfg = IterConfig::subq_half(n, elig);
    let sim = SimConfig::new(n, 1, CorruptionModel::Static, seed);
    let (_r, v) = ba_repro::iter_run(&cfg, &sim, vec![true; n], GarbageSpammer { n });
    assert!(v.all_ok(), "garbage evidence must not affect the run: {v:?}");
}
