//! Integration of the real cryptographic substrate with the protocol layer:
//! the Appendix D compiler end to end, with genuine VRF evaluations, DLEQ
//! proofs, and Schnorr signatures on the wire.

use std::sync::Arc;

use ba_repro::prelude::*;

#[test]
fn subq_half_runs_over_the_real_vrf() {
    let n = 48;
    let seed = 17;
    let elig: Arc<dyn Eligibility> = Arc::new(RealMine::from_seed(seed, MineParams::new(n, 16.0)));
    let cfg = IterConfig::subq_half(n, elig);
    let sim = SimConfig::new(n, 0, CorruptionModel::Static, seed);
    let inputs: Vec<Bit> = (0..n).map(|i| i % 2 == 0).collect();
    let (report, verdict) = ba_repro::iter_run(&cfg, &sim, inputs, Passive);
    assert!(verdict.all_ok(), "{verdict:?}");
    assert!(report.metrics.honest_multicasts > 0);
}

#[test]
fn epoch_protocol_runs_over_the_real_vrf() {
    let n = 40;
    let seed = 19;
    let elig: Arc<dyn Eligibility> = Arc::new(RealMine::from_seed(seed, MineParams::new(n, 14.0)));
    let cfg = EpochConfig::subq_third(n, 6, elig);
    let sim = SimConfig::new(n, 0, CorruptionModel::Static, seed);
    let (report, verdict) = ba_repro::epoch_run(&cfg, &sim, vec![true; n], Passive);
    assert!(verdict.all_ok(), "{verdict:?}");
    assert!(report.outputs.iter().all(|o| *o == Some(true)));
}

#[test]
fn quadratic_protocol_runs_over_real_schnorr_signatures() {
    let n = 9;
    let seed = 23;
    let kc = Arc::new(Keychain::from_seed(seed, n, SigMode::Real));
    let cfg = IterConfig::quadratic_half(n, kc, seed);
    let sim = SimConfig::new(n, 0, CorruptionModel::Static, seed);
    let inputs: Vec<Bit> = (0..n).map(|i| i % 2 == 0).collect();
    let (_report, verdict) = ba_repro::iter_run(&cfg, &sim, inputs, Passive);
    assert!(verdict.all_ok(), "{verdict:?}");
}

#[test]
fn dolev_strong_runs_over_real_signatures() {
    let n = 7;
    let cfg = DsConfig {
        n,
        f: 3,
        sender: NodeId(0),
        keychain: Arc::new(Keychain::from_seed(29, n, SigMode::Real)),
    };
    let sim = SimConfig::new(n, 0, CorruptionModel::Static, 29);
    let (report, verdict) = dolev_strong::run(&cfg, &sim, true, Passive);
    assert!(verdict.all_ok(), "{verdict:?}");
    assert!(report.outputs.iter().all(|o| *o == Some(true)));
}

#[test]
fn real_vrf_tickets_cannot_be_replayed_across_nodes_or_tags() {
    let params = MineParams::new(16, 16.0); // probability 1: everyone mines
    let fmine = RealMine::from_seed(31, params);
    let tag = MineTag::new(MsgKind::Vote, 1, true);
    let ticket = fmine.mine(NodeId(0), &tag).expect("probability 1");
    // Replay as another node.
    assert!(!fmine.verify(NodeId(1), &tag, &ticket));
    // Replay for the other bit — the bit-specificity property.
    assert!(!fmine.verify(NodeId(0), &MineTag::new(MsgKind::Vote, 1, false), &ticket));
    // Replay for another iteration.
    assert!(!fmine.verify(NodeId(0), &MineTag::new(MsgKind::Vote, 2, true), &ticket));
    // Replay for another kind.
    assert!(!fmine.verify(NodeId(0), &MineTag::new(MsgKind::Commit, 1, true), &ticket));
}

#[test]
fn forged_vote_flip_is_rejected_by_real_world_auth() {
    use ba_repro::adversary::forge_flipped;
    use ba_repro::core::auth::Auth;

    let n = 32;
    let elig: Arc<dyn Eligibility> = Arc::new(RealMine::from_seed(37, MineParams::new(n, 32.0)));
    let auth = Auth::Mined { elig: elig.clone(), bit_specific: true, keychain: None };
    // Find a node eligible for (Ack, 0, true).
    let tag = MineTag::new(MsgKind::Ack, 0, true);
    let (node, ev) = (0..n)
        .find_map(|i| auth.attest(NodeId(i), &tag).map(|ev| (NodeId(i), ev)))
        .expect("lambda = n: someone is eligible");
    assert!(auth.verify(node, &tag, &ev));
    // Try to flip: the forgery needs a fresh eligible ticket for the other
    // bit. With lambda = n it will actually succeed (probability 1), so use
    // a sparse committee to verify the negative path statistically.
    let sparse: Arc<dyn Eligibility> = Arc::new(RealMine::from_seed(38, MineParams::new(256, 4.0)));
    let sparse_auth = Auth::Mined { elig: sparse, bit_specific: true, keychain: None };
    let flip_tag = MineTag::new(MsgKind::Ack, 0, false);
    let mut blocked = 0;
    let mut tried = 0;
    for i in 0..256 {
        if let Some(observed) = sparse_auth.attest(NodeId(i), &tag) {
            tried += 1;
            if forge_flipped(&sparse_auth, NodeId(i), &flip_tag, &observed).is_none() {
                blocked += 1;
            }
        }
    }
    assert!(tried > 0);
    assert!(blocked * 10 >= tried * 9, "flips should almost always be blocked: {blocked}/{tried}");
}

#[test]
fn real_and_ideal_committee_sizes_match_statistically() {
    let n = 128;
    let lambda = 32.0;
    let mut ideal_sizes = Vec::new();
    let mut real_sizes = Vec::new();
    for seed in 0..6u64 {
        let ideal = IdealMine::new(seed, MineParams::new(n, lambda));
        let real = RealMine::from_seed(seed, MineParams::new(n, lambda));
        for it in 0..3u64 {
            let tag = MineTag::new(MsgKind::Vote, it, true);
            ideal_sizes.push((0..n).filter(|&i| ideal.mine(NodeId(i), &tag).is_some()).count());
            real_sizes.push((0..n).filter(|&i| real.mine(NodeId(i), &tag).is_some()).count());
        }
    }
    let mean = |v: &[usize]| v.iter().sum::<usize>() as f64 / v.len() as f64;
    let (mi, mr) = (mean(&ideal_sizes), mean(&real_sizes));
    assert!((mi - lambda).abs() < lambda * 0.4, "ideal mean {mi}");
    assert!((mr - lambda).abs() < lambda * 0.4, "real mean {mr}");
}
